//! Realistic scientific-workflow generators with weighted tasks.
//!
//! The paper's synthetic fork-join jobs pin the transition factor but
//! keep every task unit-cost. Real schedulers are evaluated on workflow
//! suites — Montage mosaics, Epigenomics pipelines, MapReduce shuffles —
//! whose stages have characteristic shapes *and* characteristic task
//! costs. This module generates those structures as weighted
//! [`ExplicitDag`]s: each [`WorkflowKind`] is a family parameterised by
//! a `scale` (the fan-out of its widest stage) with per-stage weight
//! distributions drawn from a caller-supplied RNG.
//!
//! Weights are sampled as exact half-integers (`k · 0.5` for integer
//! `k`), so they round-trip bit-exactly through the text dag format
//! ([`dagfile`](crate::dagfile)) and through `DagWire`, and the derived
//! integer costs (`ceil`) stay small and predictable.

use abg_dag::{DagBuilder, ExplicitDag, TaskId};
use rand::{Rng, RngExt as _};
use std::fmt;
use std::str::FromStr;

/// A family of workflow structures with stage-characteristic weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkflowKind {
    /// Source → `scale` parallel tasks → sink: the minimal fork-join
    /// with heterogeneous branch costs.
    Diamond,
    /// `scale` map tasks shuffling into `max(1, scale / 4)` reduce
    /// tasks (complete bipartite shuffle), bracketed by a split source
    /// and a collect sink.
    MapReduce,
    /// A Montage-like mosaic pipeline: `scale` projections, difference
    /// fits over neighbouring pairs, a concatenation/model bottleneck,
    /// per-tile background correction, and a final co-add.
    Montage,
    /// An Epigenomics-like pipeline: a split fans into `scale`
    /// independent 4-stage lanes (filter → convert → transform → map)
    /// that merge and finish through a 2-stage serial tail.
    Epigenomics,
}

impl WorkflowKind {
    /// All kinds, in a stable order (CLI listings, sweeps, tests).
    pub const ALL: [WorkflowKind; 4] = [
        WorkflowKind::Diamond,
        WorkflowKind::MapReduce,
        WorkflowKind::Montage,
        WorkflowKind::Epigenomics,
    ];

    /// The canonical lowercase name (what [`FromStr`] accepts).
    pub fn name(&self) -> &'static str {
        match self {
            WorkflowKind::Diamond => "diamond",
            WorkflowKind::MapReduce => "mapreduce",
            WorkflowKind::Montage => "montage",
            WorkflowKind::Epigenomics => "epigenomics",
        }
    }

    /// Generates one workflow instance at the given scale (clamped to a
    /// minimum of 1), sampling stage weights from `rng`. The returned
    /// dag always carries a weight table with at least one non-unit
    /// entry, so it routes the weighted executor kernels.
    pub fn generate<R: Rng + ?Sized>(&self, scale: u32, rng: &mut R) -> ExplicitDag {
        let scale = scale.max(1) as usize;
        match self {
            WorkflowKind::Diamond => diamond(scale, rng),
            WorkflowKind::MapReduce => mapreduce(scale, rng),
            WorkflowKind::Montage => montage(scale, rng),
            WorkflowKind::Epigenomics => epigenomics(scale, rng),
        }
    }
}

impl fmt::Display for WorkflowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WorkflowKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "diamond" => Ok(WorkflowKind::Diamond),
            "mapreduce" | "map-reduce" => Ok(WorkflowKind::MapReduce),
            "montage" => Ok(WorkflowKind::Montage),
            "epigenomics" => Ok(WorkflowKind::Epigenomics),
            other => Err(format!(
                "unknown workflow '{other}' (expected one of: diamond, mapreduce, montage, epigenomics)"
            )),
        }
    }
}

/// Samples a half-integer weight in `[lo/2, hi/2]` — an exact binary
/// fraction, so it survives text serialisation bit-for-bit.
fn half<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> f64 {
    rng.random_range(lo..=hi) as f64 * 0.5
}

/// Adds one weighted task (weights from `half` are always valid).
fn task<R: Rng + ?Sized>(b: &mut DagBuilder, rng: &mut R, lo: u64, hi: u64) -> TaskId {
    b.add_weighted_task(half(rng, lo, hi))
        .expect("half-integer weights are finite and positive")
}

fn diamond<R: Rng + ?Sized>(scale: usize, rng: &mut R) -> ExplicitDag {
    let mut b = DagBuilder::with_capacity(scale + 2);
    let src = task(&mut b, rng, 2, 6);
    let mids: Vec<TaskId> = (0..scale).map(|_| task(&mut b, rng, 2, 16)).collect();
    let sink = task(&mut b, rng, 2, 8);
    for &m in &mids {
        b.add_edge(src, m).expect("fresh ids");
        b.add_edge(m, sink).expect("fresh ids");
    }
    b.build().expect("diamond is acyclic by construction")
}

fn mapreduce<R: Rng + ?Sized>(scale: usize, rng: &mut R) -> ExplicitDag {
    let maps = scale;
    let reduces = (scale / 4).max(1);
    let mut b = DagBuilder::with_capacity(maps + reduces + 2);
    let split = task(&mut b, rng, 2, 4);
    let map_ids: Vec<TaskId> = (0..maps).map(|_| task(&mut b, rng, 8, 32)).collect();
    let reduce_ids: Vec<TaskId> = (0..reduces).map(|_| task(&mut b, rng, 16, 48)).collect();
    let collect = task(&mut b, rng, 2, 6);
    for &m in &map_ids {
        b.add_edge(split, m).expect("fresh ids");
        // The shuffle: every map feeds every reduce.
        for &r in &reduce_ids {
            b.add_edge(m, r).expect("fresh ids");
        }
    }
    for &r in &reduce_ids {
        b.add_edge(r, collect).expect("fresh ids");
    }
    b.build().expect("mapreduce is acyclic by construction")
}

fn montage<R: Rng + ?Sized>(scale: usize, rng: &mut R) -> ExplicitDag {
    let n = scale;
    let mut b = DagBuilder::with_capacity(2 * n + n.saturating_sub(1) + 4);
    // mProject: re-project each input tile.
    let projects: Vec<TaskId> = (0..n).map(|_| task(&mut b, rng, 4, 12)).collect();
    // mDiffFit: fit the overlap of each neighbouring pair of tiles.
    let diffs: Vec<TaskId> = (0..n.saturating_sub(1))
        .map(|i| {
            let d = task(&mut b, rng, 2, 6);
            b.add_edge(projects[i], d).expect("fresh ids");
            b.add_edge(projects[i + 1], d).expect("fresh ids");
            d
        })
        .collect();
    // mConcatFit + mBgModel: the serial bottleneck.
    let concat = task(&mut b, rng, 2, 8);
    for &d in &diffs {
        b.add_edge(d, concat).expect("fresh ids");
    }
    if diffs.is_empty() {
        // A single-tile mosaic still models the fit stage.
        b.add_edge(projects[0], concat).expect("fresh ids");
    }
    let model = task(&mut b, rng, 4, 10);
    b.add_edge(concat, model).expect("fresh ids");
    // mBackground: correct each tile against the model.
    let backgrounds: Vec<TaskId> = (0..n)
        .map(|i| {
            let bg = task(&mut b, rng, 2, 8);
            b.add_edge(model, bg).expect("fresh ids");
            b.add_edge(projects[i], bg).expect("fresh ids");
            bg
        })
        .collect();
    // mImgtbl + mAdd: gather and co-add.
    let imgtbl = task(&mut b, rng, 1, 4);
    for &bg in &backgrounds {
        b.add_edge(bg, imgtbl).expect("fresh ids");
    }
    let add = task(&mut b, rng, 8, 24);
    b.add_edge(imgtbl, add).expect("fresh ids");
    b.build().expect("montage is acyclic by construction")
}

fn epigenomics<R: Rng + ?Sized>(scale: usize, rng: &mut R) -> ExplicitDag {
    let lanes = scale;
    let mut b = DagBuilder::with_capacity(4 * lanes + 4);
    let split = task(&mut b, rng, 2, 6);
    let merge_inputs: Vec<TaskId> = (0..lanes)
        .map(|_| {
            // One lane: filter → convert → transform → map, a serial
            // 4-chain with map dominating the cost.
            let filter = task(&mut b, rng, 2, 8);
            b.add_edge(split, filter).expect("fresh ids");
            let convert = task(&mut b, rng, 1, 4);
            b.add_edge(filter, convert).expect("fresh ids");
            let transform = task(&mut b, rng, 1, 4);
            b.add_edge(convert, transform).expect("fresh ids");
            let map = task(&mut b, rng, 12, 36);
            b.add_edge(transform, map).expect("fresh ids");
            map
        })
        .collect();
    let merge = task(&mut b, rng, 4, 10);
    for &m in &merge_inputs {
        b.add_edge(m, merge).expect("fresh ids");
    }
    let index = task(&mut b, rng, 2, 6);
    b.add_edge(merge, index).expect("fresh ids");
    let pileup = task(&mut b, rng, 4, 12);
    b.add_edge(index, pileup).expect("fresh ids");
    b.build().expect("epigenomics is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_kind_generates_a_weighted_dag() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in WorkflowKind::ALL {
            for scale in [1u32, 4, 16] {
                let d = kind.generate(scale, &mut rng);
                assert!(!d.is_unit_weight(), "{kind} scale {scale} must be weighted");
                assert!(d.num_tasks() >= 3, "{kind} scale {scale}");
                assert!(d.work() >= d.num_tasks() as u64);
                assert!(d.weighted_span() >= d.span());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for kind in WorkflowKind::ALL {
            let d1 = kind.generate(8, &mut StdRng::seed_from_u64(42));
            let d2 = kind.generate(8, &mut StdRng::seed_from_u64(42));
            let w1 = d1.weight_profile().unwrap().weights();
            let w2 = d2.weight_profile().unwrap().weights();
            assert_eq!(w1, w2, "{kind}");
            assert_eq!(d1.num_tasks(), d2.num_tasks(), "{kind}");
        }
    }

    #[test]
    fn structures_have_the_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = WorkflowKind::Diamond.generate(6, &mut rng);
        assert_eq!(d.num_tasks(), 8);
        assert_eq!(d.span(), 3);

        let m = WorkflowKind::MapReduce.generate(8, &mut rng);
        assert_eq!(m.num_tasks(), 1 + 8 + 2 + 1);
        assert_eq!(m.span(), 4);

        let mo = WorkflowKind::Montage.generate(4, &mut rng);
        // 4 projects + 3 diffs + concat + model + 4 backgrounds + imgtbl + add
        assert_eq!(mo.num_tasks(), 15);

        let e = WorkflowKind::Epigenomics.generate(5, &mut rng);
        // split + 5 lanes × 4 + merge + index + pileup
        assert_eq!(e.num_tasks(), 24);
        assert_eq!(e.span(), 8);
    }

    #[test]
    fn scale_zero_clamps_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in WorkflowKind::ALL {
            let d = kind.generate(0, &mut rng);
            assert!(d.num_tasks() >= 3, "{kind}");
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for kind in WorkflowKind::ALL {
            assert_eq!(kind.name().parse::<WorkflowKind>().unwrap(), kind);
        }
        assert_eq!(
            "MapReduce".parse::<WorkflowKind>().unwrap(),
            WorkflowKind::MapReduce,
            "parsing is case-insensitive"
        );
        let err = "mosaic".parse::<WorkflowKind>().unwrap_err();
        assert!(err.contains("unknown workflow 'mosaic'"), "{err}");
    }

    #[test]
    fn workflows_execute_to_completion() {
        use abg_sched::{BGreedyExecutor, JobExecutor};
        let mut rng = StdRng::seed_from_u64(19);
        for kind in WorkflowKind::ALL {
            let d = kind.generate(6, &mut rng);
            let mut ex = BGreedyExecutor::new(&d);
            let mut span = 0.0;
            while !ex.is_complete() {
                span += ex.run_quantum(4, 16).span;
            }
            assert_eq!(ex.completed_work(), d.work(), "{kind}");
            assert!(
                (span - d.weighted_span() as f64).abs() < 1e-9,
                "{kind}: span {span} vs {}",
                d.weighted_span()
            );
        }
    }
}
