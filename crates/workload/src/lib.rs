//! Paper-style workload generation (Section 7.1).
//!
//! The paper evaluates the schedulers on "data-parallel jobs that have
//! fork-join structures, which alternate between serial and parallel
//! phases", generating
//!
//! * jobs with **different transition factors** by varying the level of
//!   parallelism in the parallel phases, and
//! * jobs with **variable work and critical-path length** at a fixed
//!   factor by varying the phase lengths;
//!
//! and, for the multiprogrammed experiments, **job sets with different
//! loads**, where load is "the average parallelism of the entire job set
//! normalized by the total number of processors".
//!
//! This crate packages those generators: [`paper_job`] for the
//! single-job sweep (Figure 5), [`JobSetSpec`] for the load sweep
//! (Figure 6), and [`release`] for arrival processes.
//!
//! ```
//! use abg_workload::{paper_job, JobSetSpec};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // One Figure-5 probe job pinned to transition factor 12 (L = 50).
//! let job = paper_job(12, 50, 3, &mut rng);
//! assert_eq!(job.max_width(), 12);
//!
//! // A Figure-6 job set targeting load 1.0 on 32 processors.
//! let mut spec = JobSetSpec::paper_default(1.0);
//! spec.processors = 32;
//! spec.quantum_len = 50;
//! spec.max_factor = 16;
//! let set = spec.generate(&mut rng);
//! assert!(set.load() >= 1.0);
//! assert!(set.len() <= 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dagfile;
pub mod jobset;
pub mod profiles;
pub mod release;
pub mod workflow;

pub use dagfile::{load_dag, parse_dag, save_dag, write_dag, DagFileError};
pub use jobset::{JobSet, JobSetSpec};
pub use release::{
    expected_work, expected_work_of, mean_gap_for_utilization, splitmix_seed, ArrivalProcess,
    ArrivalStream, ArrivalSubstream, ReleaseSchedule,
};
pub use workflow::WorkflowKind;

use abg_dag::{ForkJoinSpec, PhasedJob};
use rand::{Rng, RngExt as _};

/// Generates one paper-style fork-join job targeting transition factor
/// `factor` on a machine with quantum length `quantum_len` (steps, which
/// equal levels under the reference schedule).
///
/// The job alternates `pairs` serial/parallel phase pairs whose lengths
/// are uniform in `[quantum_len, 3·quantum_len]` levels, with parallel
/// width exactly `factor` — the paper's recipe for pinning the factor
/// while varying `T1` and `T∞`.
///
/// # Panics
///
/// Panics if `factor == 0`, `quantum_len == 0` or `pairs == 0`.
pub fn paper_job<R: Rng + ?Sized>(
    factor: u64,
    quantum_len: u64,
    pairs: u64,
    rng: &mut R,
) -> PhasedJob {
    ForkJoinSpec::with_transition_factor(factor, quantum_len, pairs).generate_phased(rng)
}

/// A smaller variant of [`paper_job`] whose phase lengths are uniform in
/// `[quantum_len / scale_down, quantum_len]` levels — used by tests and
/// benches that cannot afford paper-scale jobs. The measured transition
/// factor is less tightly pinned (phases shorter than a quantum blend in
/// the quantum averages).
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn scaled_job<R: Rng + ?Sized>(
    factor: u64,
    quantum_len: u64,
    pairs: u64,
    scale_down: u64,
    rng: &mut R,
) -> PhasedJob {
    assert!(factor > 0 && quantum_len > 0 && pairs > 0 && scale_down > 0);
    let lo = (quantum_len / scale_down).max(1);
    let spec = ForkJoinSpec {
        serial_levels: lo..=quantum_len.max(lo),
        parallel_levels: lo..=quantum_len.max(lo),
        width: factor..=factor,
        pairs,
    };
    spec.generate_phased(rng)
}

/// Samples a job whose parallel width is drawn uniformly from
/// `[2, max_factor]` — the mixed-factor population used to build job
/// sets.
///
/// # Panics
///
/// Panics if `max_factor < 2`, or other arguments are zero.
pub fn mixed_factor_job<R: Rng + ?Sized>(
    max_factor: u64,
    quantum_len: u64,
    pairs: u64,
    rng: &mut R,
) -> PhasedJob {
    assert!(max_factor >= 2, "need at least factor 2");
    let factor = rng.random_range(2..=max_factor);
    paper_job(factor, quantum_len, pairs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_dag::JobStructure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_job_pins_transition_factor() {
        let mut rng = StdRng::seed_from_u64(11);
        for c in [2u64, 10, 50] {
            let job = paper_job(c, 16, 3, &mut rng);
            let measured = job.transition_factor(16);
            assert!(
                measured >= c as f64 * 0.5 && measured <= c as f64 + 1e-9,
                "c={c} measured={measured}"
            );
            assert_eq!(job.max_width(), c);
        }
    }

    #[test]
    fn paper_job_varies_work_at_fixed_factor() {
        let mut rng = StdRng::seed_from_u64(5);
        let works: Vec<u64> = (0..8)
            .map(|_| paper_job(10, 16, 3, &mut rng).work())
            .collect();
        let all_same = works.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "work should vary across samples: {works:?}");
    }

    #[test]
    fn scaled_job_is_smaller() {
        let mut rng = StdRng::seed_from_u64(3);
        let big = paper_job(10, 64, 3, &mut rng).work();
        let small = scaled_job(10, 64, 3, 8, &mut rng).work();
        assert!(small < big, "scaled {small} !< paper {big}");
    }

    #[test]
    fn mixed_factor_jobs_span_the_range() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut widths = std::collections::HashSet::new();
        for _ in 0..64 {
            widths.insert(mixed_factor_job(10, 8, 2, &mut rng).max_width());
        }
        assert!(
            widths.len() > 3,
            "expected a spread of factors, got {widths:?}"
        );
        assert!(widths.iter().all(|&w| (2..=10).contains(&w)));
    }
}
