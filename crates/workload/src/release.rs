//! Release (arrival) schedules for job sets, and unbounded arrival
//! processes for open-system simulation.
//!
//! [`ReleaseSchedule`] samples release times for a *fixed-size* job set
//! (the closed-system regimes of the paper's Figure 6).
//! [`ArrivalProcess`] extends the same idea to a *stationary stream*: an
//! unbounded sequence of arrival times for sustained-load (open-system)
//! simulation, plus the arithmetic for solving the inter-arrival gap
//! that offers a target utilization ρ to the machine.

use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

/// How the jobs of a set arrive.
///
/// The paper's Theorem 5 bounds the makespan for *arbitrary* release
/// times and the mean response time for *batched* sets (all jobs
/// released together); the simulations of Figure 6 use both regimes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReleaseSchedule {
    /// All jobs released at step 0.
    Batched,
    /// Release times drawn uniformly from `[0, horizon]`.
    Uniform {
        /// Latest possible release step.
        horizon: u64,
    },
    /// Poisson arrivals with the given mean inter-arrival gap in steps
    /// (exponential gaps, one job after another).
    Poisson {
        /// Mean inter-arrival time in steps.
        mean_gap: f64,
    },
}

impl ReleaseSchedule {
    /// Samples release times for `n` jobs.
    ///
    /// # Panics
    ///
    /// Panics if a `Poisson` schedule has a non-positive or non-finite
    /// mean gap.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        match *self {
            ReleaseSchedule::Batched => vec![0; n],
            ReleaseSchedule::Uniform { horizon } => {
                (0..n).map(|_| rng.random_range(0..=horizon)).collect()
            }
            ReleaseSchedule::Poisson { mean_gap } => {
                assert!(
                    mean_gap.is_finite() && mean_gap > 0.0,
                    "mean inter-arrival gap must be positive, got {mean_gap}"
                );
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        // Inverse-CDF exponential sampling; the `1 - u`
                        // guard keeps ln() finite.
                        let u: f64 = rng.random();
                        t += -mean_gap * (1.0 - u).ln();
                        t as u64
                    })
                    .collect()
            }
        }
    }
}

/// A stationary inter-arrival process for an *unbounded* job stream —
/// the open-system counterpart of [`ReleaseSchedule`].
///
/// Where a schedule samples `n` release times up front, a process is
/// turned into an [`ArrivalStream`] that produces one arrival time after
/// another for as long as the simulation runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps with the given
    /// mean in steps.
    Poisson {
        /// Mean inter-arrival time in steps.
        mean_gap: f64,
    },
    /// Trace-driven arrivals: the given inter-arrival gaps (steps),
    /// replayed cyclically. Zero gaps model batch arrivals inside the
    /// trace; at least one gap must be positive so time advances.
    Trace {
        /// Inter-arrival gaps in steps, cycled indefinitely.
        gaps: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// Starts a fresh stream of this process from time 0.
    ///
    /// # Panics
    ///
    /// Panics if a `Poisson` process has a non-positive or non-finite
    /// mean gap, or a `Trace` process has no gaps or only zero gaps.
    pub fn stream(&self) -> ArrivalStream {
        match self {
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(
                    mean_gap.is_finite() && *mean_gap > 0.0,
                    "mean inter-arrival gap must be positive, got {mean_gap}"
                );
            }
            ArrivalProcess::Trace { gaps } => {
                assert!(!gaps.is_empty(), "arrival trace must contain gaps");
                assert!(
                    gaps.iter().any(|&g| g > 0),
                    "arrival trace needs at least one positive gap so time advances"
                );
            }
        }
        ArrivalStream {
            process: self.clone(),
            clock: 0.0,
            index: 0,
        }
    }

    /// The mean inter-arrival gap of the process in steps (trace
    /// processes average over one cycle).
    pub fn mean_gap(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_gap } => *mean_gap,
            ArrivalProcess::Trace { gaps } => gaps.iter().sum::<u64>() as f64 / gaps.len() as f64,
        }
    }
}

/// An unbounded, stateful stream of arrival times drawn from an
/// [`ArrivalProcess`]. Arrival times are non-decreasing absolute steps.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    process: ArrivalProcess,
    clock: f64,
    index: usize,
}

impl ArrivalStream {
    /// Splits the stream into `n` round-robin substreams for sharded
    /// simulation: substream `k` yields arrivals `k`, `k + n`,
    /// `k + 2n`, … of the path this stream would produce.
    ///
    /// Each [`ArrivalSubstream`] carries a SplitMix64-derived
    /// [`seed`](ArrivalSubstream::seed) of its own, mixed from `seed`
    /// and the substream index. The two intended drive modes:
    ///
    /// * **partition** — every substream replays with an RNG seeded
    ///   *identically* (e.g. the parent seed): the substreams then
    ///   decimate one common path, and the union of their arrivals is
    ///   exactly the aggregate stream (sharded drivers use this so the
    ///   offered load is split without changing the total);
    /// * **independent** — each substream replays with an RNG seeded
    ///   from its *own* derived seed: the substreams are independent
    ///   renewal processes at `1/n` of the aggregate rate, so their
    ///   union still offers the aggregate utilization in expectation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split(&self, n: usize, seed: u64) -> Vec<ArrivalSubstream> {
        assert!(n > 0, "need at least one substream");
        (0..n)
            .map(|k| ArrivalSubstream {
                seed: splitmix_seed(seed, k as u64, n as u64),
                stream: self.clone(),
                skip: k,
                stride: n,
            })
            .collect()
    }

    /// Produces the next arrival time (absolute step).
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        match &self.process {
            ArrivalProcess::Poisson { mean_gap } => {
                // Inverse-CDF exponential sampling; the `1 - u` guard
                // keeps ln() finite (same recipe as ReleaseSchedule).
                let u: f64 = rng.random();
                self.clock += -mean_gap * (1.0 - u).ln();
                self.clock as u64
            }
            ArrivalProcess::Trace { gaps } => {
                let gap = gaps[self.index % gaps.len()];
                self.index += 1;
                self.clock += gap as f64;
                self.clock as u64
            }
        }
    }

    /// Pre-draws the next `n` arrival times into `out` (appended in
    /// arrival order), batching the per-gap draws into one pass over
    /// the process state.
    ///
    /// This is byte-for-byte equivalent to calling [`next_arrival`]
    /// `n` times: the per-draw RNG consumption order is identical (one
    /// `f64` per Poisson gap, none for traces), so any fingerprint that
    /// depends on RNG interleaving is unchanged. Event-driven drivers
    /// use it to refill an arrival calendar without touching the stream
    /// once per event.
    ///
    /// [`next_arrival`]: ArrivalStream::next_arrival
    pub fn next_batch<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R, out: &mut Vec<u64>) {
        out.reserve(n);
        match &self.process {
            ArrivalProcess::Poisson { mean_gap } => {
                for _ in 0..n {
                    let u: f64 = rng.random();
                    self.clock += -mean_gap * (1.0 - u).ln();
                    out.push(self.clock as u64);
                }
            }
            ArrivalProcess::Trace { gaps } => {
                for _ in 0..n {
                    let gap = gaps[self.index % gaps.len()];
                    self.index += 1;
                    self.clock += gap as f64;
                    out.push(self.clock as u64);
                }
            }
        }
    }
}

/// Derives a substream (or shard) seed from a base seed and two
/// indices — SplitMix64-style mixing, so nearby indices map to
/// statistically independent seeds. Deterministic in its inputs;
/// sharded drivers use it to pin per-shard RNG streams to the run seed
/// independently of thread count and schedule.
pub fn splitmix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One of `n` round-robin substreams of an [`ArrivalStream`] (see
/// [`ArrivalStream::split`]): replays the parent process with the RNG
/// the caller drives it with, yielding every `n`-th arrival of that
/// replayed path starting at the substream's index.
///
/// The skipped arrivals still consume their RNG draws, so `n`
/// substreams driven with identically seeded RNGs decimate *one*
/// common path and partition it exactly.
#[derive(Debug, Clone)]
pub struct ArrivalSubstream {
    /// SplitMix64-derived seed for this substream (mixed from the split
    /// seed and the substream index) — seed an `StdRng` from it to
    /// drive the substream as an independent process.
    pub seed: u64,
    stream: ArrivalStream,
    skip: usize,
    stride: usize,
}

impl ArrivalSubstream {
    /// Produces the substream's next arrival time (absolute step),
    /// skipping the arrivals owned by sibling substreams.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        for _ in 0..self.skip {
            let _ = self.stream.next_arrival(rng);
        }
        self.skip = self.stride - 1;
        self.stream.next_arrival(rng)
    }

    /// The number of substreams the parent stream was split into.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

/// Monte-Carlo estimate of the expected work `E[T1]` of a job
/// population, from `samples` draws of the generator.
///
/// Open-system load sweeps size their arrival rate from this estimate
/// (see [`mean_gap_for_utilization`]); using a fixed seed makes the
/// estimate — and with it the whole sweep — deterministic.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn expected_work<R, F>(samples: u32, rng: &mut R, mut generate: F) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> abg_dag::PhasedJob,
{
    expected_work_of(samples, rng, |rng| generate(rng).work() as f64)
}

/// Monte-Carlo estimate of the expected work `E[T1]` of an *arbitrary*
/// job population: `work_of` maps one draw of the generator state to
/// that job's total work in processor-steps.
///
/// This is the weighted-job generalisation of [`expected_work`] (which
/// delegates here, with an identical summation order, so unit-job
/// estimates are numerically unchanged): workflow populations whose
/// tasks carry non-unit weights report `ExplicitDag::work()` — the sum
/// of integer task costs — and ρ targeting via
/// [`mean_gap_for_utilization`] stays correct without caring what kind
/// of job the stream releases.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn expected_work_of<R, F>(samples: u32, rng: &mut R, mut work_of: F) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> f64,
{
    assert!(samples > 0, "need at least one sample to estimate work");
    (0..samples).map(|_| work_of(rng)).sum::<f64>() / samples as f64
}

/// Solves the mean inter-arrival gap (steps) that offers utilization
/// `rho` to a machine of `processors`, given the class's expected work
/// per job.
///
/// The offered load of a stream with mean gap `g` is
/// `ρ = E[T1] / (g · P)` — work arriving per step over machine capacity
/// — so `g = E[T1] / (ρ · P)`. `ρ ≥ 1` is a valid input: the resulting
/// stream *over*-loads the machine, which is exactly what the
/// saturation-detection tests drive.
///
/// # Panics
///
/// Panics if `rho` or `expected_work` is non-positive/non-finite, or
/// `processors == 0`.
pub fn mean_gap_for_utilization(rho: f64, processors: u32, expected_work: f64) -> f64 {
    assert!(
        rho.is_finite() && rho > 0.0,
        "target utilization must be positive, got {rho}"
    );
    assert!(processors > 0, "machine must have processors");
    assert!(
        expected_work.is_finite() && expected_work > 0.0,
        "expected work must be positive, got {expected_work}"
    );
    expected_work / (rho * processors as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batched_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ReleaseSchedule::Batched.sample(4, &mut rng), vec![0; 4]);
    }

    #[test]
    fn uniform_stays_in_horizon() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = ReleaseSchedule::Uniform { horizon: 100 }.sample(64, &mut rng);
        assert!(r.iter().all(|&t| t <= 100));
        assert!(r.iter().any(|&t| t > 0), "should not all be zero");
    }

    #[test]
    fn poisson_is_nondecreasing_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = ReleaseSchedule::Poisson { mean_gap: 50.0 }.sample(200, &mut rng);
        assert!(r.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = *r.last().unwrap() as f64 / r.len() as f64;
        assert!((20.0..100.0).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn zero_jobs_yield_empty_schedule() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(ReleaseSchedule::Batched.sample(0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_gap() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ReleaseSchedule::Poisson { mean_gap: 0.0 }.sample(1, &mut rng);
    }

    #[test]
    fn poisson_stream_is_nondecreasing_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut stream = ArrivalProcess::Poisson { mean_gap: 40.0 }.stream();
        let times: Vec<u64> = (0..400).map(|_| stream.next_arrival(&mut rng)).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let mean = *times.last().unwrap() as f64 / times.len() as f64;
        assert!((20.0..80.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn trace_stream_cycles_its_gaps() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut stream = ArrivalProcess::Trace {
            gaps: vec![5, 0, 10],
        }
        .stream();
        let times: Vec<u64> = (0..6).map(|_| stream.next_arrival(&mut rng)).collect();
        // Gaps 5, 0, 10 cycle: 5, 5, 15, 20, 20, 30.
        assert_eq!(times, vec![5, 5, 15, 20, 20, 30]);
    }

    #[test]
    fn batched_draws_match_serial_draws_bit_for_bit() {
        // next_batch must consume the RNG in the same per-draw order as
        // repeated next_arrival calls: same seed, same arrival times,
        // and the RNGs end in the same state.
        for process in [
            ArrivalProcess::Poisson { mean_gap: 40.0 },
            ArrivalProcess::Trace {
                gaps: vec![5, 0, 10, 3],
            },
        ] {
            let mut serial_rng = StdRng::seed_from_u64(9);
            let mut batch_rng = StdRng::seed_from_u64(9);
            let mut serial = process.stream();
            let mut batch = process.stream();
            let expect: Vec<u64> = (0..100)
                .map(|_| serial.next_arrival(&mut serial_rng))
                .collect();
            let mut got = Vec::new();
            batch.next_batch(37, &mut batch_rng, &mut got);
            batch.next_batch(63, &mut batch_rng, &mut got);
            assert_eq!(got, expect, "{process:?}");
            let s: u64 = serial_rng.random();
            let b: u64 = batch_rng.random();
            assert_eq!(s, b, "RNG state diverged for {process:?}");
        }
    }

    #[test]
    fn batch_appends_without_clearing() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut stream = ArrivalProcess::Trace { gaps: vec![2] }.stream();
        let mut out = vec![99];
        stream.next_batch(2, &mut rng, &mut out);
        assert_eq!(out, vec![99, 2, 4]);
        stream.next_batch(0, &mut rng, &mut out);
        assert_eq!(out, vec![99, 2, 4], "n = 0 is a no-op");
    }

    #[test]
    fn trace_mean_gap_averages_one_cycle() {
        let p = ArrivalProcess::Trace {
            gaps: vec![5, 0, 10],
        };
        assert_eq!(p.mean_gap(), 5.0);
        assert_eq!(ArrivalProcess::Poisson { mean_gap: 7.5 }.mean_gap(), 7.5);
    }

    #[test]
    #[should_panic(expected = "positive gap")]
    fn all_zero_trace_rejected() {
        let _ = ArrivalProcess::Trace { gaps: vec![0, 0] }.stream();
    }

    #[test]
    #[should_panic(expected = "must contain gaps")]
    fn empty_trace_rejected() {
        let _ = ArrivalProcess::Trace { gaps: vec![] }.stream();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_stream_rejects_zero_gap() {
        let _ = ArrivalProcess::Poisson { mean_gap: 0.0 }.stream();
    }

    #[test]
    fn split_substreams_partition_the_parent_path() {
        // Driven with identically seeded RNGs, the substreams decimate
        // one common path: merging their yields in round-robin order
        // reproduces the parent stream arrival for arrival.
        for process in [
            ArrivalProcess::Poisson { mean_gap: 30.0 },
            ArrivalProcess::Trace {
                gaps: vec![4, 0, 9, 2],
            },
        ] {
            let mut parent_rng = StdRng::seed_from_u64(0x51);
            let mut parent = process.stream();
            let expect: Vec<u64> = (0..120)
                .map(|_| parent.next_arrival(&mut parent_rng))
                .collect();

            let n = 3;
            let mut subs = process.stream().split(n, 0xF00D);
            let mut rngs: Vec<StdRng> = (0..n).map(|_| StdRng::seed_from_u64(0x51)).collect();
            let mut merged = Vec::new();
            for _round in 0..(120 / n) {
                for (sub, rng) in subs.iter_mut().zip(&mut rngs) {
                    merged.push(sub.next_arrival(rng));
                }
            }
            assert_eq!(merged, expect, "{process:?}");
        }
    }

    #[test]
    fn split_seeds_are_distinct_and_deterministic() {
        let stream = ArrivalProcess::Poisson { mean_gap: 10.0 }.stream();
        let a = stream.split(4, 99);
        let b = stream.split(4, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.stride(), 4);
        }
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "derived seeds must be distinct");
        assert_ne!(
            a[0].seed,
            stream.split(4, 100)[0].seed,
            "split seed matters"
        );
    }

    #[test]
    fn split_of_one_is_the_parent_stream() {
        let process = ArrivalProcess::Poisson { mean_gap: 25.0 };
        let mut parent_rng = StdRng::seed_from_u64(3);
        let mut sub_rng = StdRng::seed_from_u64(3);
        let mut parent = process.stream();
        let mut sub = process.stream().split(1, 7).remove(0);
        for _ in 0..64 {
            assert_eq!(
                sub.next_arrival(&mut sub_rng),
                parent.next_arrival(&mut parent_rng)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one substream")]
    fn split_rejects_zero_substreams() {
        let _ = ArrivalProcess::Poisson { mean_gap: 10.0 }
            .stream()
            .split(0, 1);
    }

    #[test]
    fn splitmix_seed_is_deterministic_and_spread() {
        assert_eq!(splitmix_seed(1, 2, 3), splitmix_seed(1, 2, 3));
        assert_ne!(splitmix_seed(1, 2, 3), splitmix_seed(1, 3, 2));
        assert_ne!(splitmix_seed(1, 2, 3), splitmix_seed(2, 2, 3));
    }

    #[test]
    fn expected_work_matches_constant_population() {
        use abg_dag::{Phase, PhasedJob};
        let mut rng = StdRng::seed_from_u64(8);
        let w = expected_work(16, &mut rng, |_| PhasedJob::new(vec![Phase::new(2, 10)]));
        assert_eq!(w, 20.0, "constant jobs estimate exactly");
    }

    #[test]
    fn expected_work_of_generalises_bit_identically() {
        // The unit-job wrapper must delegate with an unchanged
        // summation, so the two estimates agree to the last bit even on
        // a population whose per-sample work varies.
        use abg_dag::{Phase, PhasedJob};
        let sample = |rng: &mut StdRng| {
            let levels = rng.random_range(3..20u64);
            PhasedJob::new(vec![Phase::new(4, levels)])
        };
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        let via_jobs = expected_work(32, &mut a, sample);
        let via_work = expected_work_of(32, &mut b, |rng| sample(rng).work() as f64);
        assert_eq!(via_jobs.to_bits(), via_work.to_bits());
    }

    #[test]
    fn expected_work_of_handles_weighted_dags() {
        let mut rng = StdRng::seed_from_u64(21);
        let w = expected_work_of(8, &mut rng, |rng| {
            let cost = rng.random_range(2..=4u64);
            let dag = abg_dag::generate::chain(10)
                .with_uniform_weight(cost as f64)
                .expect("valid weight");
            dag.work() as f64
        });
        assert!((20.0..=40.0).contains(&w), "weighted estimate {w}");
    }

    #[test]
    fn gap_solver_inverts_the_offered_load() {
        // ρ = E[T1] / (g · P): solving for g and recomputing ρ round-trips.
        let g = mean_gap_for_utilization(0.5, 64, 3200.0);
        assert_eq!(g, 100.0);
        let rho = 3200.0 / (g * 64.0);
        assert!((rho - 0.5).abs() < 1e-12);
        // Heavier load arrives faster.
        assert!(mean_gap_for_utilization(0.9, 64, 3200.0) < g);
        // ρ ≥ 1 is allowed: saturation experiments need it.
        assert!(mean_gap_for_utilization(1.5, 64, 3200.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization must be positive")]
    fn gap_solver_rejects_zero_rho() {
        let _ = mean_gap_for_utilization(0.0, 64, 100.0);
    }
}
