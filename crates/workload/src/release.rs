//! Release (arrival) schedules for job sets.

use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

/// How the jobs of a set arrive.
///
/// The paper's Theorem 5 bounds the makespan for *arbitrary* release
/// times and the mean response time for *batched* sets (all jobs
/// released together); the simulations of Figure 6 use both regimes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReleaseSchedule {
    /// All jobs released at step 0.
    Batched,
    /// Release times drawn uniformly from `[0, horizon]`.
    Uniform {
        /// Latest possible release step.
        horizon: u64,
    },
    /// Poisson arrivals with the given mean inter-arrival gap in steps
    /// (exponential gaps, one job after another).
    Poisson {
        /// Mean inter-arrival time in steps.
        mean_gap: f64,
    },
}

impl ReleaseSchedule {
    /// Samples release times for `n` jobs.
    ///
    /// # Panics
    ///
    /// Panics if a `Poisson` schedule has a non-positive or non-finite
    /// mean gap.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        match *self {
            ReleaseSchedule::Batched => vec![0; n],
            ReleaseSchedule::Uniform { horizon } => {
                (0..n).map(|_| rng.random_range(0..=horizon)).collect()
            }
            ReleaseSchedule::Poisson { mean_gap } => {
                assert!(
                    mean_gap.is_finite() && mean_gap > 0.0,
                    "mean inter-arrival gap must be positive, got {mean_gap}"
                );
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        // Inverse-CDF exponential sampling; the `1 - u`
                        // guard keeps ln() finite.
                        let u: f64 = rng.random();
                        t += -mean_gap * (1.0 - u).ln();
                        t as u64
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batched_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ReleaseSchedule::Batched.sample(4, &mut rng), vec![0; 4]);
    }

    #[test]
    fn uniform_stays_in_horizon() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = ReleaseSchedule::Uniform { horizon: 100 }.sample(64, &mut rng);
        assert!(r.iter().all(|&t| t <= 100));
        assert!(r.iter().any(|&t| t > 0), "should not all be zero");
    }

    #[test]
    fn poisson_is_nondecreasing_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = ReleaseSchedule::Poisson { mean_gap: 50.0 }.sample(200, &mut rng);
        assert!(r.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = *r.last().unwrap() as f64 / r.len() as f64;
        assert!((20.0..100.0).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn zero_jobs_yield_empty_schedule() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(ReleaseSchedule::Batched.sample(0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_gap() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ReleaseSchedule::Poisson { mean_gap: 0.0 }.sample(1, &mut rng);
    }
}
