//! Irregular parallelism profiles — beyond fork-join.
//!
//! The paper's evaluation sticks to alternating serial/parallel
//! fork-join jobs, but its future-work section (Section 9) asks how
//! *other* characteristics of the parallelism profile — the frequency
//! of change, the variance — affect adaptive schedulers. These
//! generators produce jobs whose profiles are random walks, bursts and
//! ramps, for the robustness experiment that answers that question.

use abg_dag::{Phase, PhasedJob};
use rand::{Rng, RngExt as _};

/// A job whose phase widths follow a bounded multiplicative random
/// walk: each phase's width is the previous width scaled by a factor in
/// `[1/step, step]`, clamped to `[1, max_width]`.
///
/// # Panics
///
/// Panics if `phases == 0`, `levels_per_phase == 0`, `max_width == 0`
/// or `step <= 1.0`.
pub fn random_walk_job<R: Rng + ?Sized>(
    phases: u64,
    levels_per_phase: u64,
    max_width: u64,
    step: f64,
    rng: &mut R,
) -> PhasedJob {
    assert!(phases > 0 && levels_per_phase > 0 && max_width > 0);
    assert!(step > 1.0 && step.is_finite(), "walk step must exceed 1");
    let mut width = 1.0f64;
    let list: Vec<Phase> = (0..phases)
        .map(|_| {
            let factor = step.powf(rng.random_range(-1.0..=1.0));
            width = (width * factor).clamp(1.0, max_width as f64);
            Phase::new(width.round() as u64, levels_per_phase)
        })
        .collect();
    PhasedJob::new(list)
}

/// A bursty job: serial almost everywhere, with occasional short spikes
/// of `spike_width` parallelism (probability `spike_prob` per phase).
///
/// Bursty profiles are the worst case for slow-reacting feedback: by
/// the time a controller ramps up, the burst is gone.
///
/// # Panics
///
/// Panics on zero sizes or a probability outside `[0, 1]`.
pub fn bursty_job<R: Rng + ?Sized>(
    phases: u64,
    levels_per_phase: u64,
    spike_width: u64,
    spike_prob: f64,
    rng: &mut R,
) -> PhasedJob {
    assert!(phases > 0 && levels_per_phase > 0 && spike_width > 0);
    assert!((0.0..=1.0).contains(&spike_prob), "probability in [0, 1]");
    let list: Vec<Phase> = (0..phases)
        .map(|_| {
            if rng.random_bool(spike_prob) {
                Phase::new(spike_width, levels_per_phase)
            } else {
                Phase::new(1, levels_per_phase)
            }
        })
        .collect();
    PhasedJob::new(list)
}

/// A ramp: parallelism grows linearly from 1 to `peak` across `phases`
/// phases, then falls back symmetrically — a smooth profile with many
/// small transitions (high change frequency, low per-step variance).
///
/// # Panics
///
/// Panics on zero sizes.
pub fn ramp_job(phases: u64, levels_per_phase: u64, peak: u64) -> PhasedJob {
    assert!(phases > 0 && levels_per_phase > 0 && peak > 0);
    let up: Vec<Phase> = (0..phases)
        .map(|i| {
            let w = 1 + (peak - 1) * i / phases.max(1);
            Phase::new(w.max(1), levels_per_phase)
        })
        .collect();
    let mut list = up.clone();
    list.push(Phase::new(peak, levels_per_phase));
    list.extend(up.into_iter().rev());
    PhasedJob::new(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_dag::JobStructure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_walk_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let job = random_walk_job(40, 3, 16, 2.0, &mut rng);
        assert_eq!(job.phases().len(), 40);
        for p in job.phases() {
            assert!((1..=16).contains(&p.width));
            assert_eq!(p.levels, 3);
        }
        // A walk actually moves.
        let widths: std::collections::HashSet<u64> = job.phases().iter().map(|p| p.width).collect();
        assert!(widths.len() > 2, "walk stuck: {widths:?}");
    }

    #[test]
    fn bursty_is_mostly_serial() {
        let mut rng = StdRng::seed_from_u64(2);
        let job = bursty_job(100, 2, 32, 0.1, &mut rng);
        let spikes = job.phases().iter().filter(|p| p.width == 32).count();
        let serial = job.phases().iter().filter(|p| p.width == 1).count();
        assert_eq!(spikes + serial, 100);
        assert!((2..=30).contains(&spikes), "spike count {spikes}");
    }

    #[test]
    fn ramp_is_symmetric_with_peak() {
        let job = ramp_job(8, 2, 10);
        let widths: Vec<u64> = job.phases().iter().map(|p| p.width).collect();
        assert_eq!(widths.len(), 17);
        assert_eq!(widths[8], 10, "peak in the middle");
        assert_eq!(widths[0], *widths.last().unwrap());
        // Non-decreasing up, non-increasing down.
        assert!(widths[..9].windows(2).all(|w| w[0] <= w[1]));
        assert!(widths[8..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn profiles_have_distinct_characteristics() {
        let mut rng = StdRng::seed_from_u64(3);
        let bursty = bursty_job(60, 4, 32, 0.08, &mut rng);
        let ramp = ramp_job(16, 4, 32);
        // Bursty: few but violent changes; ramp: many gentle ones.
        let b = bursty.profile();
        let r = ramp.profile();
        assert!(
            b.coefficient_of_variation() > r.coefficient_of_variation(),
            "bursty CV {} should exceed ramp CV {}",
            b.coefficient_of_variation(),
            r.coefficient_of_variation()
        );
    }

    #[test]
    #[should_panic(expected = "walk step")]
    fn random_walk_step_must_exceed_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_walk_job(4, 1, 8, 1.0, &mut rng);
    }
}
