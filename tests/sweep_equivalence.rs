//! Golden bit-exactness of the sweep outputs across refactors.
//!
//! The fingerprints pinned here were recorded from the pre-CSR,
//! pre-sharding harness (`cargo run --release --example
//! sweep_fingerprint -- --paper`); every field of every output row is
//! folded through `f64::to_bits`, so a match means the memory-layout and
//! parallelism overhaul left the simulation behavior identical down to
//! the last ulp. If an *intentional* behavior change moves these values,
//! re-record them with the example and say so in the commit message.

use abg::experiments::{
    load_fingerprint, multiprogrammed_sweep, single_job_sweep, sweep_fingerprint,
    MultiprogrammedConfig, SingleJobSweepConfig,
};

/// `single_job_sweep(SingleJobSweepConfig::scaled())`.
const FIG5_SCALED: u64 = 0xaa0db22451a30c4f;
/// `multiprogrammed_sweep(MultiprogrammedConfig::scaled())`.
const FIG6_SCALED: u64 = 0x7a637df27bf7c5ab;
/// `single_job_sweep(SingleJobSweepConfig::paper())`.
const FIG5_PAPER: u64 = 0xbd4b009a3e6290c5;
/// `multiprogrammed_sweep(MultiprogrammedConfig::paper())`.
const FIG6_PAPER: u64 = 0xa904d28e2f0eaa19;

#[test]
fn scaled_single_job_sweep_matches_golden() {
    let points = single_job_sweep(&SingleJobSweepConfig::scaled());
    assert_eq!(sweep_fingerprint(&points), FIG5_SCALED);
}

#[test]
fn scaled_multiprogrammed_sweep_matches_golden() {
    let points = multiprogrammed_sweep(&MultiprogrammedConfig::scaled());
    assert_eq!(load_fingerprint(&points), FIG6_SCALED);
}

#[test]
fn paper_single_job_sweep_matches_golden() {
    let points = single_job_sweep(&SingleJobSweepConfig::paper());
    assert_eq!(sweep_fingerprint(&points), FIG5_PAPER);
}

#[test]
fn paper_multiprogrammed_sweep_matches_golden() {
    let points = multiprogrammed_sweep(&MultiprogrammedConfig::paper());
    assert_eq!(load_fingerprint(&points), FIG6_PAPER);
}

#[test]
fn sweeps_are_thread_count_invariant() {
    // The goldens above run under whatever ABG_THREADS the environment
    // sets; this test walks the worker count explicitly. Mutating the
    // variable while sibling tests run concurrently is safe precisely
    // because of the property under test: results never depend on it.
    for threads in ["1", "2", "3", "8"] {
        std::env::set_var("ABG_THREADS", threads);
        let fig5 = single_job_sweep(&SingleJobSweepConfig::scaled());
        assert_eq!(
            sweep_fingerprint(&fig5),
            FIG5_SCALED,
            "fig5 drifted at ABG_THREADS={threads}"
        );
        let fig6 = multiprogrammed_sweep(&MultiprogrammedConfig::scaled());
        assert_eq!(
            load_fingerprint(&fig6),
            FIG6_SCALED,
            "fig6 drifted at ABG_THREADS={threads}"
        );
    }
    std::env::remove_var("ABG_THREADS");
}
