//! Integration tests for the beyond-the-paper extensions: the
//! work-stealing substrate, the adaptive quantum policy, the governed
//! convergence rate and the PI controller — all exercised through the
//! same two-level simulation as the core reproduction.

use abg::prelude::*;
use abg_control::{AdaptiveRateControl, PiControl};
use abg_sim::{run_single_job_adaptive, AdaptiveQuantum, FixedQuantum};
use abg_steal::{abp_request, ASteal, StealExecutor};
use proptest::prelude::*;

fn forkjoin(width: u64) -> PhasedJob {
    PhasedJob::new(vec![
        Phase::new(1, 60),
        Phase::new(width, 200),
        Phase::new(1, 40),
        Phase::new(width, 200),
        Phase::new(1, 60),
    ])
}

/// Work stealing completes the same jobs as the centralized executors
/// with the same work/span accounting.
#[test]
fn steal_executor_accounting_matches_intrinsics() {
    let job = forkjoin(8);
    let dag = job.to_explicit();
    let mut ex = StealExecutor::new(&dag, 11);
    let mut span = 0.0;
    while !ex.is_complete() {
        let s = ex.run_quantum(6, 25);
        span += s.span;
    }
    assert_eq!(ex.completed_work(), job.work());
    assert!((span - job.span() as f64).abs() < 1e-9);
}

/// The full two-level loop over the stealing substrate: A-Steal asks
/// for far less than ABP during serial phases.
#[test]
fn asteal_releases_processors_in_serial_phases() {
    let job = forkjoin(16);
    let dag = job.to_explicit();

    let run = |mut calc: Box<dyn RequestCalculator + Send>| {
        let mut ex = StealExecutor::new(&dag, 23);
        let mut alloc = Scripted::ample(32);
        run_single_job(
            &mut ex,
            &mut calc,
            &mut alloc,
            SingleJobConfig::new(50).with_trace(),
        )
    };
    let asteal = run(Box::new(ASteal::paper_default()));
    let abp = run(Box::new(abp_request(32)));

    // ABP holds 32 processors every quantum; A-Steal's mean allotment
    // must be well below that.
    let mean_allot = |r: &SingleJobRun| {
        r.trace.iter().map(|q| q.allotment as f64).sum::<f64>() / r.trace.len() as f64
    };
    assert!(mean_allot(&abp) > 31.0);
    assert!(
        mean_allot(&asteal) < 20.0,
        "A-Steal mean allotment {}",
        mean_allot(&asteal)
    );
    assert!(
        abp.waste > 2 * asteal.waste,
        "{} vs {}",
        abp.waste,
        asteal.waste
    );
}

/// The adaptive quantum pacer dominates the fixed pacers on the
/// quanta-versus-quality frontier for phase-structured jobs. Pacing is
/// now a property of the unified `Controller` — the paced controller is
/// just another controller, even behind a `Box<dyn>`.
#[test]
fn adaptive_quantum_frontier() {
    let job = forkjoin(12);
    let run = |pacer: AdaptiveQuantum| {
        let mut ex = PipelinedExecutor::new(job.clone());
        // Boxed on purpose: the quantum-length hooks must survive
        // dynamic dispatch for heterogeneous engines.
        let mut ctl: Box<dyn RequestCalculator + Send> = Box::new(pacer.pace(AControl::new(0.2)));
        let mut alloc = Scripted::ample(64);
        run_single_job_adaptive(&mut ex, &mut ctl, &mut alloc, SingleJobConfig::new(25))
    };
    let (short, _) = run(FixedQuantum(25).into());
    let (long, _) = run(FixedQuantum(400).into());
    let (adaptive, _) = run(AdaptiveQuantum::new(25, 400, 0.05));

    assert!(
        adaptive.quanta < short.quanta,
        "{} vs {}",
        adaptive.quanta,
        short.quanta
    );
    assert!(
        adaptive.running_time <= long.running_time,
        "{} vs {}",
        adaptive.running_time,
        long.running_time
    );
}

/// The governed rate keeps the Theorem-4 precondition without giving up
/// single-job quality.
#[test]
fn governed_rate_end_to_end() {
    let job = forkjoin(24);
    let mut ex = PipelinedExecutor::new(job.clone());
    let mut ctl = AdaptiveRateControl::new(0.2, 0.9);
    let mut alloc = Scripted::ample(64);
    let run = run_single_job(&mut ex, &mut ctl, &mut alloc, SingleJobConfig::new(50));
    // Quanta blend the serial and parallel phases, so the measured
    // factor is well below the width-24 peak but still far above 1.
    assert!(
        ctl.estimated_factor() >= 3.0,
        "Ĉ_L = {}",
        ctl.estimated_factor()
    );
    assert!(ctl.effective_rate() * ctl.estimated_factor() < 1.0);
    assert!(run.time_over_span() < 1.6);
}

/// The PI controller drives the full simulation and lands within a few
/// percent of A-Control on fork-join jobs.
#[test]
fn pi_controller_end_to_end() {
    let job = forkjoin(16);
    let run = |mut calc: Box<dyn RequestCalculator + Send>| {
        let mut ex = PipelinedExecutor::new(job.clone());
        let mut alloc = Scripted::ample(64);
        run_single_job(&mut ex, &mut calc, &mut alloc, SingleJobConfig::new(50))
    };
    let integral = run(Box::new(AControl::new(0.2)));
    let pi = run(Box::new(PiControl::new(0.2, 0.1)));
    let ratio = pi.running_time as f64 / integral.running_time as f64;
    assert!((0.9..=1.1).contains(&ratio), "PI/I time ratio {ratio}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Work stealing completes arbitrary layered dags (no deadlock or
    /// livelock) within the classic bound, for any allotment schedule.
    #[test]
    fn stealing_always_completes(seed in 0u64..200, a in 1u32..12) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dag = abg_dag::generate::random_layered(&mut rng, 5, 1..=5, 0.3);
        let mut ex = StealExecutor::new(&dag, seed ^ 0xF00D);
        let mut guard = 0u64;
        while !ex.is_complete() {
            ex.run_quantum(a, 8);
            guard += 1;
            prop_assert!(guard < 10_000, "no livelock allowed");
        }
        prop_assert_eq!(ex.completed_work(), dag.work());
    }

    /// The adaptive quantum pacer always stays within its bounds and
    /// the run completes with conserved work.
    #[test]
    fn adaptive_quantum_respects_bounds(widths in prop::collection::vec(1u64..10, 1..5),
                                        min_exp in 0u32..3) {
        let min = 5u64 << min_exp;
        let max = min * 8;
        let phases: Vec<Phase> = widths.iter().map(|&w| Phase::new(w, 20)).collect();
        let job = PhasedJob::new(phases);
        let total = job.work();
        let mut ex = PipelinedExecutor::new(job);
        let mut ctl = AdaptiveQuantum::new(min, max, 0.05).pace(AControl::new(0.2));
        let mut alloc = Scripted::ample(32);
        let (run, _) = run_single_job_adaptive(
            &mut ex, &mut ctl, &mut alloc,
            SingleJobConfig::new(min).with_trace(),
        );
        prop_assert_eq!(run.work, total);
        for r in &run.trace {
            prop_assert!(r.stats.quantum_len >= min && r.stats.quantum_len <= max,
                "quantum length {} outside [{min}, {max}]", r.stats.quantum_len);
        }
    }
}
