//! Property tests for the OS allocators: the universal contract
//! (conservative, within capacity) for every policy, plus the fairness
//! and non-reserving properties DEQ claims.

use abg_alloc::invariants::{is_fair, is_non_reserving, validate};
use abg_alloc::{Allocator, DynamicEquiPartition, Proportional, RoundRobin, Scripted};
use proptest::prelude::*;

fn request_vectors() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0),
            (1u32..200).prop_map(|x| x as f64),
            (1u32..2000).prop_map(|x| x as f64 / 10.0),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// DEQ: conservative, within capacity, non-reserving, and fair —
    /// on any request vector, repeatedly (the rotation state must not
    /// break any invariant).
    #[test]
    fn deq_full_contract(reqs in request_vectors(), p in 1u32..200, rounds in 1usize..4) {
        let mut alloc = DynamicEquiPartition::new(p);
        for _ in 0..rounds {
            let a = alloc.allocate(&reqs);
            prop_assert_eq!(validate(&reqs, &a, p), Ok(()));
            prop_assert!(is_non_reserving(&reqs, &a, p),
                "DEQ left processors idle: {:?} -> {:?} on {}", reqs, a, p);
            prop_assert!(is_fair(&reqs, &a),
                "DEQ unfair: {:?} -> {:?}", reqs, a);
        }
    }

    /// DEQ availability probes: `a_i = min(ceil(d_i), p_i)` when probed
    /// before allocating, and probing does not disturb the allocation.
    #[test]
    fn deq_availability_consistent(reqs in request_vectors(), p in 1u32..100) {
        let mut with_probe = DynamicEquiPartition::new(p);
        let mut without = DynamicEquiPartition::new(p);
        let avail = with_probe.availabilities(&reqs);
        let a1 = with_probe.allocate(&reqs);
        let a2 = without.allocate(&reqs);
        prop_assert_eq!(&a1, &a2, "probing must not disturb the policy");
        for i in 0..reqs.len() {
            let cap = abg_alloc::ceil_request(reqs[i]);
            prop_assert_eq!(a1[i], cap.min(avail[i]),
                "job {}: a={} cap={} p={}", i, a1[i], cap, avail[i]);
        }
    }

    /// Round-robin: conservative, within capacity, fair — but allowed
    /// to reserve.
    #[test]
    fn round_robin_contract(reqs in request_vectors(), p in 1u32..200) {
        let mut alloc = RoundRobin::new(p);
        let a = alloc.allocate(&reqs);
        prop_assert_eq!(validate(&reqs, &a, p), Ok(()));
        prop_assert!(is_fair(&reqs, &a));
    }

    /// Proportional: conservative, within capacity, non-reserving.
    #[test]
    fn proportional_contract(reqs in request_vectors(), p in 1u32..200) {
        let mut alloc = Proportional::new(p);
        let a = alloc.allocate(&reqs);
        prop_assert_eq!(validate(&reqs, &a, p), Ok(()));
        prop_assert!(is_non_reserving(&reqs, &a, p),
            "proportional left processors idle: {:?} -> {:?} on {}", reqs, a, p);
    }

    /// Scripted: conservative and bounded by the scripted availability.
    #[test]
    fn scripted_contract(req in 0f64..500.0, script in prop::collection::vec(0u32..64, 1..8)) {
        let p = 64;
        let mut alloc = Scripted::cycling(p, script.clone());
        for q in 0..script.len() * 2 {
            let a = alloc.allocate(&[req]);
            prop_assert_eq!(validate(&[req], &a, p), Ok(()));
            prop_assert!(a[0] <= script[q % script.len()]);
        }
    }

    /// DEQ hands every processor to a single unbounded requester.
    #[test]
    fn deq_single_job_gets_machine(p in 1u32..500) {
        let mut alloc = DynamicEquiPartition::new(p);
        let a = alloc.allocate(&[f64::from(p) * 4.0]);
        prop_assert_eq!(a[0], p);
    }
}
