//! Cross-model consistency: the three execution substrates (pipelined
//! fast path, per-task B-Greedy, randomized work stealing) agree on the
//! conserved quantities and order as theory predicts.

use abg_dag::{Phase, PhasedJob};
use abg_sched::{BGreedyExecutor, JobExecutor, PipelinedExecutor};
use abg_steal::StealExecutor;
use proptest::prelude::*;

fn phases() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec((1u64..=8, 1u64..=6), 1..5)
        .prop_map(|v| v.into_iter().map(|(w, l)| Phase::new(w, l)).collect())
}

fn drive<E: JobExecutor>(ex: &mut E, a: u32, l: u64) -> (u64, u64, f64) {
    let mut span = 0.0;
    while !ex.is_complete() {
        span += ex.run_quantum(a, l).span;
    }
    (ex.elapsed_steps(), ex.completed_work(), span)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three substrates complete the same job with identical work
    /// and accumulated span, and greedy scheduling (which executes
    /// `min(a, ready)` tasks every step) is never slower than work
    /// stealing (which loses steps to failed steals) at the same fixed
    /// allotment.
    #[test]
    fn substrates_agree_and_greedy_dominates(ph in phases(), a in 1u32..10,
                                             l in 2u64..12, seed in 0u64..100) {
        let job = PhasedJob::new(ph);
        let dag = job.to_explicit();

        let mut fast = PipelinedExecutor::new(job.clone());
        let (t_fast, w_fast, s_fast) = drive(&mut fast, a, l);

        let mut greedy = BGreedyExecutor::new(&dag);
        let (t_greedy, w_greedy, s_greedy) = drive(&mut greedy, a, l);

        let mut steal = StealExecutor::new(&dag, seed);
        let (t_steal, w_steal, s_steal) = drive(&mut steal, a, l);

        // Conservation across all three.
        prop_assert_eq!(w_fast, job.work());
        prop_assert_eq!(w_greedy, job.work());
        prop_assert_eq!(w_steal, job.work());
        prop_assert!((s_fast - job.span() as f64).abs() < 1e-9);
        prop_assert!((s_greedy - job.span() as f64).abs() < 1e-9);
        prop_assert!((s_steal - job.span() as f64).abs() < 1e-9);

        // The fast path IS per-task B-Greedy.
        prop_assert_eq!(t_fast, t_greedy);

        // Work stealing can only lose steps relative to an omniscient
        // greedy scheduler at the same allotment.
        prop_assert!(t_steal >= t_greedy,
            "stealing finished in {t_steal} steps < greedy's {t_greedy}");

        // And it cannot be worse than fully serial execution plus the
        // classic span overhead bound with a generous constant.
        prop_assert!(t_steal <= job.work() + 16 * a as u64 * job.span(),
            "stealing took {t_steal} steps on T1={} T∞={}", job.work(), job.span());
    }
}
