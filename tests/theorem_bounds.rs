//! Integration tests validating the paper's analytical guarantees
//! (Lemma 2, Theorems 1, 3, 4, 5) on simulated schedules across a
//! parameter grid.

use abg::experiments::{
    lemma2_check, theorem1_grid, theorem3_check, theorem4_check, theorem5_check,
};

#[test]
fn theorem1_criteria_across_grid() {
    let rows = theorem1_grid(
        &[1.5, 4.0, 10.0, 32.0, 128.0, 1024.0],
        &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95],
        128,
    );
    assert_eq!(rows.len(), 42);
    for r in rows {
        assert!(r.bibo_stable, "unstable at {r:?}");
        assert!((r.pole - r.rate).abs() < 1e-12);
        // Zero steady-state error is approached geometrically: after q
        // quanta the residual is exactly r^(q-1)·(A − 1).
        let residual = r.rate.powi(127) * (r.parallelism - 1.0);
        assert!(
            r.steady_state_error <= residual + 1e-9,
            "sse {} exceeds geometric residual {residual} at {r:?}",
            r.steady_state_error
        );
        assert!(r.max_overshoot < 1e-9, "overshoot {r:?}");
        assert!(r.measured_rate <= r.rate + 1e-6, "rate {r:?}");
    }
}

#[test]
fn lemma2_envelope_across_factors_and_rates() {
    for seed in [1u64, 7, 23] {
        for factor in [2u64, 3, 4, 6, 8, 12, 16] {
            for rate in [0.0, 0.05, 0.2, 0.4] {
                for check in lemma2_check(factor, rate, 100, 3, 128, seed) {
                    assert!(
                        check.holds,
                        "factor {factor}, rate {rate}, seed {seed}: {check:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn theorem3_time_bound_under_adversaries() {
    for seed in [3u64, 11, 42] {
        for factor in [2u64, 5, 10, 20, 50] {
            for rate in [0.0, 0.2, 0.5, 0.8] {
                let check = theorem3_check(factor, rate, 100, 3, 64, seed);
                assert!(
                    check.holds,
                    "factor {factor}, rate {rate}, seed {seed}: {check:?}"
                );
            }
        }
    }
}

#[test]
fn theorem4_waste_bound_when_applicable() {
    let mut applicable = 0;
    for seed in [5u64, 13] {
        for factor in [2u64, 3, 4, 8, 16] {
            for rate in [0.0, 0.05, 0.2] {
                if let Some(check) = theorem4_check(factor, rate, 100, 3, 128, seed) {
                    applicable += 1;
                    assert!(
                        check.holds,
                        "factor {factor}, rate {rate}, seed {seed}: {check:?}"
                    );
                }
            }
        }
    }
    assert!(
        applicable >= 10,
        "too few applicable configurations ({applicable})"
    );
}

#[test]
fn theorem5_global_bounds_hold() {
    let mut applicable = 0;
    for seed in [17u64, 29] {
        for load in [0.5, 1.0, 2.0, 4.0] {
            if let Some(checks) = theorem5_check(load, 4, 0.2, 50, 2, 64, seed) {
                applicable += 1;
                for c in checks {
                    assert!(c.holds, "load {load}, seed {seed}: {c:?}");
                }
            }
        }
    }
    assert!(
        applicable >= 6,
        "too few applicable job sets ({applicable})"
    );
}

#[test]
fn theorem4_correctly_reports_inapplicable() {
    // Factor 50 with r = 0.2 breaks r < 1/C_L by an order of magnitude.
    assert!(theorem4_check(50, 0.2, 100, 3, 128, 1).is_none());
}
