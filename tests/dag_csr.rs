//! Property tests for the CSR dag storage: successor iteration must
//! reproduce builder insertion semantics exactly, duplicate edges must
//! be rejected in O(1) without corrupting state, and the adjacency-list
//! wire form must round-trip losslessly.

use abg_dag::{DagBuilder, DagError, DagWire, ExplicitDag, TaskId};
use proptest::prelude::*;
use std::collections::HashSet;

const N: u32 = 12;

/// Feeds raw (possibly self-looping, possibly duplicate) pairs into a
/// builder, orienting each edge low → high id so the graph stays
/// acyclic, and returns the builder together with the reference model:
/// per-task successor lists in insertion order and in-degrees.
fn ingest(raw: &[(u32, u32)]) -> (DagBuilder, Vec<Vec<TaskId>>, Vec<u32>) {
    let mut b = DagBuilder::new();
    b.add_tasks(N as usize);
    let mut model: Vec<Vec<TaskId>> = vec![Vec::new(); N as usize];
    let mut indeg = vec![0u32; N as usize];
    let mut seen = HashSet::new();
    for &(x, y) in raw {
        if x == y {
            continue;
        }
        let (from, to) = (TaskId(x.min(y)), TaskId(x.max(y)));
        if !seen.insert((from, to)) {
            continue;
        }
        b.add_edge(from, to).unwrap();
        model[from.index()].push(to);
        indeg[to.index()] += 1;
    }
    (b, model, indeg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `successors(t)` reads the CSR row exactly as the edges were
    /// inserted, and every derived degree/count agrees with the naive
    /// adjacency-list model.
    #[test]
    fn csr_matches_insertion_model(raw in prop::collection::vec((0u32..N, 0u32..N), 0..60)) {
        let (b, model, indeg) = ingest(&raw);
        let edges: usize = model.iter().map(Vec::len).sum();
        prop_assert_eq!(b.num_edges(), edges);
        let dag = b.build().unwrap();
        prop_assert_eq!(dag.num_edges(), edges);
        for t in dag.tasks() {
            prop_assert_eq!(dag.successors(t).to_vec(), model[t.index()].clone(),
                "successors of {} diverged from insertion order", t);
            prop_assert_eq!(dag.in_degree(t), indeg[t.index()]);
            prop_assert_eq!(dag.out_degree(t) as usize, model[t.index()].len());
        }
        prop_assert_eq!(dag.to_adjacency(), model);
    }

    /// A duplicate insertion errors without disturbing the builder: the
    /// finished dag is identical to one that never saw the duplicates.
    #[test]
    fn duplicate_edges_rejected_without_corruption(
        raw in prop::collection::vec((0u32..N, 0u32..N), 1..40),
    ) {
        let (mut b, model, _) = ingest(&raw);
        // Replay every accepted edge: each must now be a duplicate.
        for (i, row) in model.iter().enumerate() {
            let from = TaskId(i as u32);
            for &to in row {
                prop_assert_eq!(
                    b.add_edge(from, to),
                    Err(DagError::DuplicateEdge(from, to))
                );
            }
        }
        let dag = b.build().unwrap();
        prop_assert_eq!(dag.to_adjacency(), model);
    }

    /// The wire form (nested adjacency lists plus derived fields) and
    /// the plain adjacency conversion both round-trip to an equal dag.
    #[test]
    fn wire_and_adjacency_round_trip(raw in prop::collection::vec((0u32..N, 0u32..N), 0..60)) {
        let (b, _, _) = ingest(&raw);
        let dag = b.build().unwrap();
        let wire: DagWire = dag.clone().into();
        let back = ExplicitDag::try_from(wire).unwrap();
        prop_assert_eq!(&back, &dag);
        let back = ExplicitDag::from_adjacency(dag.to_adjacency()).unwrap();
        prop_assert_eq!(&back, &dag);
    }

    /// The `level_recip` fast path survives the CSR rewrite: each entry
    /// is exactly `1.0 / level_sizes[l]`, and summing each task's
    /// fractional contribution reconstructs the span.
    #[test]
    fn level_recips_consistent(raw in prop::collection::vec((0u32..N, 0u32..N), 0..60)) {
        let (b, _, _) = ingest(&raw);
        let dag = b.build().unwrap();
        prop_assert_eq!(dag.level_recips().len() as u64, dag.span());
        for (l, (&size, &recip)) in dag
            .level_sizes()
            .iter()
            .zip(dag.level_recips())
            .enumerate()
        {
            prop_assert_eq!(recip.to_bits(), (1.0 / size as f64).to_bits(), "level {}", l);
            prop_assert_eq!(dag.level_recip(l as u32).to_bits(), recip.to_bits());
        }
        let span: f64 = dag.tasks().map(|t| dag.level_recip(dag.level(t))).sum();
        prop_assert!((span - dag.span() as f64).abs() < 1e-9);
    }
}
