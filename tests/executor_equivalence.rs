//! Property tests: the fast-forward executors are step-exact replicas
//! of per-task B-Greedy execution, and every greedy variant respects
//! the classical greedy-scheduling bounds.

use abg_dag::{generate, ExplicitDag, LeveledJob, Phase, PhasedJob};
use abg_sched::queue::{BreadthFirstQueue, FifoQueue, LifoQueue};
use abg_sched::{
    BGreedyExecutor, DagExecutor, DepthFirstExecutor, GreedyExecutor, JobExecutor, LeveledExecutor,
    PipelinedExecutor, ReadyQueue, ReferenceExecutor,
};
use proptest::prelude::*;

/// Arbitrary small phase lists (fork-join shaped: widths ≥ 1).
fn phases() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec((1u64..=9, 1u64..=6), 1..6)
        .prop_map(|v| v.into_iter().map(|(w, l)| Phase::new(w, l)).collect())
}

/// Arbitrary allotment schedules.
fn allotments() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(1u32..=12, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pipelined fast path reproduces per-task B-Greedy execution
    /// on the lowered dag, quantum by quantum.
    #[test]
    fn pipelined_matches_per_task(phases in phases(), allots in allotments(), l in 1u64..8) {
        let job = PhasedJob::new(phases);
        let dag = job.to_explicit();
        let mut fast = PipelinedExecutor::new(job);
        let mut slow = BGreedyExecutor::new(&dag);
        for &a in &allots {
            let f = fast.run_quantum(a, l);
            let s = slow.run_quantum(a, l);
            prop_assert_eq!(f.work, s.work);
            prop_assert!((f.span - s.span).abs() < 1e-9, "{} vs {}", f.span, s.span);
            prop_assert_eq!(f.steps_worked, s.steps_worked);
            prop_assert_eq!(f.completed, s.completed);
            if fast.is_complete() { break; }
        }
    }

    /// The leveled (barrier) fast path reproduces per-task B-Greedy on
    /// its own lowering.
    #[test]
    fn leveled_matches_per_task(widths in prop::collection::vec(1u64..=8, 1..10),
                                allots in allotments(), l in 1u64..8) {
        let job = LeveledJob::from_widths(widths);
        let dag = job.to_explicit();
        let mut fast = LeveledExecutor::new(job);
        let mut slow = BGreedyExecutor::new(&dag);
        for &a in &allots {
            let f = fast.run_quantum(a, l);
            let s = slow.run_quantum(a, l);
            prop_assert_eq!(f.work, s.work);
            prop_assert!((f.span - s.span).abs() < 1e-9);
            prop_assert_eq!(f.steps_worked, s.steps_worked);
            if fast.is_complete() { break; }
        }
    }

    /// Every greedy variant completes any dag within the Graham/Brent
    /// bound `T ≤ T1/a + T∞` at a fixed allotment, and the accumulated
    /// quantum statistics equal the job's intrinsic totals.
    #[test]
    fn greedy_bound_and_totals(seed in 0u64..1000, a in 1u32..10) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dag = generate::random_layered(&mut rng, 6, 1..=5, 0.3);
        let bound = dag.work() as f64 / a as f64 + dag.span() as f64;

        for variant in 0..3 {
            let (steps, work, span) = match variant {
                0 => drive(BGreedyExecutor::new(&dag), a),
                1 => drive(GreedyExecutor::new(&dag), a),
                _ => drive(DepthFirstExecutor::new(&dag), a),
            };
            prop_assert!(steps as f64 <= bound + 1e-9,
                "variant {variant}: T = {steps} > {bound}");
            prop_assert_eq!(work, dag.work());
            prop_assert!((span - dag.span() as f64).abs() < 1e-9,
                "variant {variant}: span sum {} vs {}", span, dag.span());
        }
    }

    /// Quantum work is conserved: a quantum never reports more work
    /// than `a·L`, and the paper's Inequality (5) holds up to its
    /// boundary correction: `α(q) + β(q) ≥ 1 − 2/L` on full
    /// non-completing quanta.
    ///
    /// The exact `α + β ≥ 1` of the paper fails by up to `2/L` when a
    /// quantum straddles level/phase tails: a step that finishes a level
    /// started in an *earlier* quantum is an "incomplete" greedy step
    /// but earns only the level's residual fraction of span credit (and
    /// symmetrically at the quantum's end). The deficit vanishes as
    /// `L → ∞`, leaving the paper's asymptotic analysis intact; see
    /// EXPERIMENTS.md.
    #[test]
    fn efficiency_inequality_holds(phases in phases(), a in 1u32..10, l in 1u64..12) {
        let job = PhasedJob::new(phases);
        let mut ex = PipelinedExecutor::new(job);
        while !ex.is_complete() {
            let s = ex.run_quantum(a, l);
            prop_assert!(s.work <= a as u64 * l);
            if s.is_full() && !s.completed {
                let alpha = s.work_efficiency().expect("a > 0");
                let beta = s.span_efficiency().expect("l > 0");
                prop_assert!(alpha + beta >= 1.0 - 2.0 / l as f64 - 1e-9,
                    "α = {alpha}, β = {beta} on a full quantum with L = {l}");
            }
        }
    }

    /// The same corrected inequality for the barrier-leveled executor.
    #[test]
    fn efficiency_inequality_holds_barrier(widths in prop::collection::vec(1u64..=9, 1..8),
                                           a in 1u32..10, l in 1u64..12) {
        let job = LeveledJob::from_widths(widths);
        let mut ex = LeveledExecutor::new(job);
        while !ex.is_complete() {
            let s = ex.run_quantum(a, l);
            if s.is_full() && !s.completed {
                let alpha = s.work_efficiency().expect("a > 0");
                let beta = s.span_efficiency().expect("l > 0");
                prop_assert!(alpha + beta >= 1.0 - 2.0 / l as f64 - 1e-9,
                    "α = {alpha}, β = {beta} on a full quantum with L = {l}");
            }
        }
    }

    /// The macro-stepping kernel is *bit-identical* to the naive
    /// per-step reference kernel — same work, same steps, same span down
    /// to the last ulp (the reference's per-task `1.0 / size` divisions
    /// are exactly the optimised kernel's reciprocal-table reads, added
    /// in the same pop order) — on random layered dags under random
    /// allotment/quantum-length schedules, for every queue discipline.
    /// Zero-allotment quanta are included: both kernels must treat them
    /// as pure no-ops.
    #[test]
    fn macro_kernel_bit_identical_to_reference(
        seed in 0u64..1000,
        sched in prop::collection::vec((0u32..=12, 1u64..=16), 1..40),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dag = generate::random_layered(&mut rng, 6, 1..=5, 0.3);
        lockstep::<BreadthFirstQueue>(&dag, &sched);
        lockstep::<FifoQueue>(&dag, &sched);
        lockstep::<LifoQueue>(&dag, &sched);
    }

    /// The wide-frontier bulk kernel is bit-identical to the reference
    /// on the canonical fork-join shapes, each of which pins a different
    /// kernel regime: the binary fork tree drives the structural fast
    /// path (forest, unit edges, contiguous id runs), the chain bundle
    /// the steady saturated path with live join in-degrees, the diamond
    /// wide straddling steps, and nested series-parallel graphs mix
    /// every regime with skip-level edges. Allotments range up to 48 so
    /// quanta cross the saturated/straddling boundary both ways, and all
    /// three queue disciplines run the same schedule.
    #[test]
    fn macro_kernel_bit_identical_on_forkjoin_shapes(
        shape in 0usize..4,
        seed in 0u64..200,
        sched in prop::collection::vec((0u32..=48, 1u64..=16), 1..30),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dag = match shape {
            0 => generate::binary_fork_tree(7),
            1 => generate::chain_bundle(6, 9),
            2 => generate::fork_join_diamond(37),
            _ => generate::series_parallel(&mut rng, 60, 4, 0.4),
        };
        lockstep::<BreadthFirstQueue>(&dag, &sched);
        lockstep::<FifoQueue>(&dag, &sched);
        lockstep::<LifoQueue>(&dag, &sched);
    }

    /// Reset-then-rerun bit-identity: running a dag through a reset
    /// executor replays the exact per-quantum statistics (span compared
    /// by bit pattern) of both the executor's own first run and a
    /// freshly constructed one — reset is observationally equivalent to
    /// construction.
    #[test]
    fn reset_rerun_is_bit_identical(
        seed in 0u64..300,
        sched in prop::collection::vec((0u32..=12, 1u64..=16), 1..30),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dag = generate::random_layered(&mut rng, 6, 1..=5, 0.3);
        let mut ex = BGreedyExecutor::new(&dag);
        let first = trace(&mut ex, &sched);
        ex.reset();
        let again = trace(&mut ex, &sched);
        let fresh = trace(&mut BGreedyExecutor::new(&dag), &sched);
        prop_assert_eq!(&first, &again, "reset diverged from first run");
        prop_assert_eq!(&first, &fresh, "reset diverged from fresh construction");
    }

    /// The weighted residual-work kernel is bit-identical to the
    /// weighted reference rescan on random layered dags under random
    /// half-integer weight tables, allotment/quantum-length schedules
    /// and every queue discipline. The weight tables always contain at
    /// least one non-unit entry, so both executors take their weighted
    /// paths (the unit shortcut is pinned separately below).
    #[test]
    fn weighted_kernel_bit_identical_to_reference(
        seed in 0u64..500,
        wseed in 0u64..500,
        sched in prop::collection::vec((0u32..=12, 1u64..=16), 1..40),
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = generate::random_layered(&mut rng, 6, 1..=5, 0.3);
        let mut wrng = rand::rngs::StdRng::seed_from_u64(wseed);
        let mut weights: Vec<f64> = (0..base.num_tasks())
            .map(|_| wrng.random_range(1..=8u64) as f64 * 0.5)
            .collect();
        weights[0] = 2.5; // force a non-unit table
        let dag = base.with_weights(weights).expect("finite positive weights");
        prop_assert!(!dag.is_unit_weight());
        lockstep::<BreadthFirstQueue>(&dag, &sched);
        lockstep::<FifoQueue>(&dag, &sched);
        lockstep::<LifoQueue>(&dag, &sched);
    }

    /// An all-unit weight table is observationally identical to having
    /// no table at all: the build detects it, routes the unit fast
    /// path, and every per-quantum statistic matches bit for bit.
    #[test]
    fn unit_weight_table_matches_no_table_bit_for_bit(
        seed in 0u64..300,
        sched in prop::collection::vec((0u32..=12, 1u64..=16), 1..30),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bare = generate::random_layered(&mut rng, 6, 1..=5, 0.3);
        let tabled = bare.clone().with_uniform_weight(1.0).expect("unit weights");
        prop_assert!(tabled.is_unit_weight());
        let mut plain = BGreedyExecutor::new(&bare);
        let mut unit: DagExecutor<&ExplicitDag, BreadthFirstQueue> = DagExecutor::new(&tabled);
        let first = trace(&mut plain, &sched);
        let second = trace(&mut unit, &sched);
        prop_assert_eq!(first, second, "unit table diverged from no table");
    }

    /// Driven to completion, the weighted kernels agree on the totals:
    /// completed work is the sum of integer task costs and the
    /// accumulated fractional span reproduces the weighted span exactly.
    #[test]
    fn weighted_kernel_completes_like_reference(
        seed in 0u64..200, wseed in 0u64..200, a in 1u32..10, l in 1u64..20,
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = generate::random_layered(&mut rng, 5, 1..=6, 0.4);
        let mut wrng = rand::rngs::StdRng::seed_from_u64(wseed);
        let mut weights: Vec<f64> = (0..base.num_tasks())
            .map(|_| wrng.random_range(1..=7u64) as f64 * 0.5)
            .collect();
        weights[0] = 1.5;
        let dag = base.with_weights(weights).expect("finite positive weights");
        let mut fast = BGreedyExecutor::new(&dag);
        let mut slow: ReferenceExecutor<&ExplicitDag, BreadthFirstQueue> =
            ReferenceExecutor::new(&dag);
        let mut fast_span = 0.0f64;
        let mut slow_span = 0.0f64;
        while !fast.is_complete() {
            fast_span += fast.run_quantum(a, l).span;
            slow_span += slow.run_quantum(a, l).span;
        }
        prop_assert!(slow.is_complete());
        prop_assert_eq!(fast.elapsed_steps(), slow.elapsed_steps());
        prop_assert_eq!(fast.completed_work(), dag.work());
        prop_assert_eq!(fast_span.to_bits(), slow_span.to_bits(),
            "accumulated span {} vs {}", fast_span, slow_span);
        prop_assert!((fast_span - dag.weighted_span() as f64).abs() < 1e-9,
            "span sum {} vs weighted span {}", fast_span, dag.weighted_span());
    }

    /// Driven to completion with generous quanta, both kernels agree on
    /// the totals and on completing at all.
    #[test]
    fn macro_kernel_completes_like_reference(seed in 0u64..500, a in 1u32..10, l in 1u64..20) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dag = generate::random_layered(&mut rng, 5, 1..=6, 0.4);
        let mut fast = BGreedyExecutor::new(&dag);
        let mut slow: ReferenceExecutor<&ExplicitDag, BreadthFirstQueue> =
            ReferenceExecutor::new(&dag);
        let mut fast_span = 0.0f64;
        let mut slow_span = 0.0f64;
        while !fast.is_complete() {
            fast_span += fast.run_quantum(a, l).span;
            slow_span += slow.run_quantum(a, l).span;
        }
        prop_assert!(slow.is_complete());
        prop_assert_eq!(fast.elapsed_steps(), slow.elapsed_steps());
        prop_assert_eq!(fast.completed_work(), dag.work());
        prop_assert_eq!(fast_span.to_bits(), slow_span.to_bits(),
            "accumulated span {} vs {}", fast_span, slow_span);
        prop_assert!((fast_span - dag.span() as f64).abs() < 1e-9);
    }
}

/// Runs the optimised and reference kernels in lockstep over the same
/// quantum schedule and asserts bit-identical [`abg_sched::QuantumStats`]
/// plus matching executor-level counters after every quantum.
fn lockstep<Q: ReadyQueue>(dag: &ExplicitDag, sched: &[(u32, u64)]) {
    let mut fast: DagExecutor<&ExplicitDag, Q> = DagExecutor::new(dag);
    let mut slow: ReferenceExecutor<&ExplicitDag, Q> = ReferenceExecutor::new(dag);
    for &(a, l) in sched {
        let f = fast.run_quantum(a, l);
        let s = slow.run_quantum(a, l);
        assert_eq!(f.allotment, s.allotment);
        assert_eq!(f.quantum_len, s.quantum_len);
        assert_eq!(f.work, s.work, "work diverged at (a={a}, l={l})");
        assert_eq!(
            f.steps_worked, s.steps_worked,
            "steps diverged at (a={a}, l={l})"
        );
        assert_eq!(
            f.span.to_bits(),
            s.span.to_bits(),
            "span diverged at (a={a}, l={l}): {} vs {}",
            f.span,
            s.span
        );
        assert_eq!(f.completed, s.completed);
        assert_eq!(fast.completed_work(), slow.completed_work());
        assert_eq!(fast.elapsed_steps(), slow.elapsed_steps());
        assert_eq!(fast.is_complete(), slow.is_complete());
    }
}

/// Replays a quantum schedule and returns the per-quantum observable
/// trace: (work, steps worked, span bit pattern, completed) per
/// quantum, plus the executor counters after each one.
fn trace<D, Q>(
    ex: &mut DagExecutor<D, Q>,
    sched: &[(u32, u64)],
) -> Vec<(u64, u64, u64, bool, u64, u64)>
where
    D: std::borrow::Borrow<ExplicitDag>,
    Q: ReadyQueue,
{
    sched
        .iter()
        .map(|&(a, l)| {
            let s = ex.run_quantum(a, l);
            (
                s.work,
                s.steps_worked,
                s.span.to_bits(),
                s.completed,
                ex.completed_work(),
                ex.elapsed_steps(),
            )
        })
        .collect()
}

/// Runs a job to completion at a fixed allotment; returns (steps,
/// total work, accumulated fractional span).
fn drive<E: JobExecutor>(mut ex: E, a: u32) -> (u64, u64, f64) {
    let mut span = 0.0;
    while !ex.is_complete() {
        let s = ex.run_quantum(a, 7);
        span += s.span;
    }
    (ex.elapsed_steps(), ex.completed_work(), span)
}
