//! Integration tests asserting the *shape* of every paper figure at
//! scaled size: who wins, by roughly what factor, and where behaviour
//! crosses over. These are the executable form of EXPERIMENTS.md.

use abg::experiments::{
    multiprogrammed_sweep, single_job_sweep, transient_comparison, MultiprogrammedConfig,
    SingleJobSweepConfig, TransientConfig,
};
use abg_dag::generate::figure2_job;
use abg_sched::{BGreedyExecutor, JobExecutor};

fn transient_cfg() -> TransientConfig {
    TransientConfig {
        parallelism: 10,
        quantum_len: 100,
        quanta: 10,
        rate: 0.2,
        responsiveness: 2.0,
        utilization: 0.8,
        processors: 128,
    }
}

/// Figure 1: A-Greedy's requests on a constant-parallelism job keep
/// oscillating by a factor of ρ forever.
#[test]
fn figure1_agreedy_request_instability() {
    let res = transient_comparison(&transient_cfg());
    let tail: Vec<f64> = res.agreedy[4..].iter().map(|p| p.request).collect();
    let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = tail.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min >= 2.0 - 1e-9,
        "no sustained oscillation: {tail:?}"
    );
    // And the oscillation brackets the true parallelism.
    assert!(
        min < 10.0 && max > 10.0,
        "oscillation should straddle A: {min}..{max}"
    );
}

/// Figure 2: the worked example's exact quantum statistics.
#[test]
fn figure2_fractional_statistics() {
    let dag = figure2_job();
    let mut ex = BGreedyExecutor::new(&dag);
    ex.run_quantum(1, 2);
    let q = ex.run_quantum(4, 3);
    assert_eq!(q.work, 12);
    assert!((q.span - 2.4).abs() < 1e-12);
    assert_eq!(q.average_parallelism(), Some(5.0));
}

/// Figure 4: ABG converges geometrically with rate r, no overshoot,
/// vanishing steady-state error — while A-Greedy overshoots and never
/// settles.
#[test]
fn figure4_transient_comparison() {
    let cfg = transient_cfg();
    let res = transient_comparison(&cfg);
    let a = cfg.parallelism as f64;

    // ABG: monotone, bounded by A, geometric error decay at rate r.
    let mut prev_err = a - 1.0;
    for p in &res.abg {
        assert!(p.request <= a + 1e-9, "overshoot at q={}", p.quantum);
        let err = a - p.request;
        assert!(err <= prev_err + 1e-9, "error must shrink monotonically");
        prev_err = err;
    }
    let final_err = a - res.abg.last().unwrap().request;
    assert!(final_err < 0.01 * a, "steady-state error {final_err}");

    // The exact trajectory of Equation (3): d(q+1) = r·d(q) + (1-r)·A.
    let mut d = 1.0;
    for p in &res.abg {
        assert!(
            (p.request - d).abs() < 1e-9,
            "q={}: {} vs {}",
            p.quantum,
            p.request,
            d
        );
        d = cfg.rate * d + (1.0 - cfg.rate) * a;
    }

    // A-Greedy: overshoots by up to ρ and keeps oscillating.
    let max = res.agreedy.iter().map(|p| p.request).fold(0.0f64, f64::max);
    assert!(max >= 1.5 * a, "expected an overshoot ≥ 1.5A, saw {max}");
}

/// Figure 5: across the factor sweep ABG runs faster and wastes less
/// than A-Greedy; at tiny factors the two are comparable; ABG's curves
/// barely move with the factor.
#[test]
fn figure5_single_job_sweep_shape() {
    let cfg = SingleJobSweepConfig {
        factors: vec![2, 5, 10, 20, 40, 80],
        jobs_per_factor: 8,
        quantum_len: 100,
        ..SingleJobSweepConfig::scaled()
    };
    let pts = single_job_sweep(&cfg);

    // Headline: mean ratios favour ABG (paper: ≈1.2× time, ≈2× waste).
    let n = pts.len() as f64;
    let time_ratio: f64 = pts.iter().map(|p| p.time_ratio).sum::<f64>() / n;
    let waste_ratio: f64 = pts.iter().map(|p| p.waste_ratio).sum::<f64>() / n;
    assert!(time_ratio > 1.03, "time ratio {time_ratio}");
    assert!(waste_ratio > 1.5, "waste ratio {waste_ratio}");

    // Small factors: comparable performance (ratio near 1).
    assert!(pts[0].time_ratio < 1.15, "factor 2 should be nearly even");

    // ABG's normalized time moves little across a 40× factor range.
    let abg_spread = pts.iter().map(|p| p.abg_time_norm).fold(0.0f64, f64::max)
        - pts
            .iter()
            .map(|p| p.abg_time_norm)
            .fold(f64::INFINITY, f64::min);
    assert!(
        abg_spread < 0.5,
        "ABG should be factor-insensitive, spread {abg_spread}"
    );

    // Sanity: measured factors track the targets.
    for p in &pts {
        assert!(p.measured_factor >= p.factor as f64 * 0.4);
        assert!(p.measured_factor <= p.factor as f64 + 1e-9);
    }
}

/// Figure 6: under light load ABG wins by ~10%; under heavy load the
/// two schedulers converge; normalized makespan rises then falls.
#[test]
fn figure6_multiprogrammed_shape() {
    let cfg = MultiprogrammedConfig {
        loads: vec![0.25, 0.5, 1.0, 2.0, 4.0, 6.0],
        sets_per_load: 6,
        processors: 128,
        quantum_len: 100,
        pairs: 3,
        max_factor: 100,
        ..MultiprogrammedConfig::scaled()
    };
    let pts = multiprogrammed_sweep(&cfg);

    // Light load: ABG ahead on both global metrics.
    let light = &pts[0];
    assert!(
        light.makespan_ratio > 1.02,
        "light-load makespan ratio {}",
        light.makespan_ratio
    );
    assert!(
        light.response_ratio > 1.02,
        "light-load response ratio {}",
        light.response_ratio
    );

    // Heavy load: the advantage diminishes (requests are deprived).
    let heavy = pts.last().unwrap();
    assert!(
        heavy.makespan_ratio < light.makespan_ratio,
        "advantage should shrink with load: {} vs {}",
        heavy.makespan_ratio,
        light.makespan_ratio
    );
    assert!(
        heavy.makespan_ratio < 1.05,
        "heavy-load ratio {}",
        heavy.makespan_ratio
    );

    // All normalized metrics are ≥ 1 (lower bounds are real bounds).
    for p in &pts {
        assert!(p.abg_makespan_norm >= 1.0 - 1e-9);
        assert!(p.agreedy_makespan_norm >= 1.0 - 1e-9);
        assert!(p.abg_response_norm >= 1.0 - 1e-9);
        assert!(p.agreedy_response_norm >= 1.0 - 1e-9);
    }

    // The rise-then-fall of M/M* (two lower bounds crossing over).
    let first = pts.first().unwrap().abg_makespan_norm;
    let peak = pts
        .iter()
        .map(|p| p.abg_makespan_norm)
        .fold(0.0f64, f64::max);
    let last = pts.last().unwrap().abg_makespan_norm;
    assert!(
        peak >= first && peak >= last,
        "expected a peak: {first} .. {peak} .. {last}"
    );
}
