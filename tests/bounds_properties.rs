//! Property tests tying the theoretical bounds to the simulator: lower
//! bounds must actually lower-bound simulated schedules, and the
//! competitive coefficients must behave as the formulas promise.

use abg::bounds::{
    self, lemma2_coefficients, makespan_lower_bound, response_lower_bound_batched, JobSize,
};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, AGreedy, ConstantRequest, RequestCalculator};
use abg_dag::{Phase, PhasedJob};
use abg_sched::PipelinedExecutor;
use abg_sim::MultiJobSim;
use proptest::prelude::*;

fn phases() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec((1u64..=10, 1u64..=8), 1..5)
        .prop_map(|v| v.into_iter().map(|(w, l)| Phase::new(w, l)).collect())
}

fn job_sets() -> impl Strategy<Value = Vec<(Vec<Phase>, u64)>> {
    prop::collection::vec((phases(), 0u64..60), 1..6)
}

/// Builds a traced multi-job simulation over the given set and returns
/// (outcome, sizes).
fn simulate(
    jobs: &[(Vec<Phase>, u64)],
    p: u32,
    l: u64,
    which: u8,
) -> (abg_sim::MultiJobOutcome, Vec<JobSize>) {
    let mut sim = MultiJobSim::new(DynamicEquiPartition::new(p), l).with_max_quanta(500_000);
    let mut sizes = Vec::new();
    for (ph, release) in jobs {
        let job = PhasedJob::new(ph.clone());
        sizes.push(JobSize {
            work: job.work(),
            span: job.span(),
            release: *release,
        });
        let calc: Box<dyn RequestCalculator + Send> = match which % 3 {
            0 => Box::new(AControl::new(0.2)),
            1 => Box::new(AGreedy::paper_default()),
            _ => Box::new(ConstantRequest::new(3.0)),
        };
        sim.add_job(Box::new(PipelinedExecutor::new(job)), calc, *release);
    }
    (sim.run(), sizes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No simulated schedule ever beats the makespan lower bound — for
    /// any job set, release pattern, machine size and scheduler.
    #[test]
    fn makespan_lower_bound_is_a_lower_bound(jobs in job_sets(), p in 1u32..24,
                                             l in 2u64..16, which in 0u8..3) {
        let (out, sizes) = simulate(&jobs, p, l, which);
        let m_star = makespan_lower_bound(&sizes, p);
        prop_assert!(out.makespan as f64 >= m_star - 1e-9,
            "simulated {} < bound {m_star}", out.makespan);
    }

    /// Batched sets: mean response time never beats `R*`.
    #[test]
    fn response_lower_bound_is_a_lower_bound(jobs in prop::collection::vec(phases(), 1..6),
                                             p in 1u32..24, l in 2u64..16, which in 0u8..3) {
        let batched: Vec<(Vec<Phase>, u64)> = jobs.into_iter().map(|ph| (ph, 0)).collect();
        let (out, sizes) = simulate(&batched, p, l, which);
        let r_star = response_lower_bound_batched(&sizes, p);
        prop_assert!(out.mean_response_time() >= r_star - 1e-9,
            "simulated {} < bound {r_star}", out.mean_response_time());
    }

    /// Lemma-2 coefficients bracket 1 whenever the upper bound applies,
    /// and tighten monotonically as the factor approaches 1.
    #[test]
    fn lemma2_coefficients_bracket_one(c_l in 1.0f64..20.0, r in 0.0f64..0.99) {
        let coeff = lemma2_coefficients(c_l, r);
        prop_assert!(coeff.lower > 0.0);
        prop_assert!(coeff.lower <= 1.0 + 1e-9);
        if let Some(upper) = coeff.upper {
            prop_assert!(upper >= 1.0 - 1e-9, "upper {upper} below 1");
            prop_assert!(upper >= coeff.lower);
        } else {
            prop_assert!(c_l * r >= 1.0, "upper missing although r < 1/C_L");
        }
    }

    /// The Theorem-3 bound grows monotonically in the transition factor
    /// and shrinks in the trimmed availability — sanity on the formula's
    /// partial derivatives.
    #[test]
    fn theorem3_bound_monotonicity(work in 1u64..100_000, span in 1u64..5_000,
                                   c in 1.0f64..50.0, r in 0.0f64..0.9,
                                   avail in 1.0f64..256.0, l in 1u64..2_000) {
        let base = bounds::theorem3_time_bound(work, span, c, r, avail, l);
        let more_factor = bounds::theorem3_time_bound(work, span, c + 1.0, r, avail, l);
        let more_avail = bounds::theorem3_time_bound(work, span, c, r, avail + 1.0, l);
        prop_assert!(more_factor >= base);
        prop_assert!(more_avail <= base);
    }

    /// Theorem-4/5 bounds exist exactly when `r < 1/C_L`.
    #[test]
    fn bound_applicability_matches_precondition(c in 1.0f64..20.0, r in 0.0f64..0.99) {
        let applies = c * r < 1.0;
        prop_assert_eq!(bounds::theorem4_waste_bound(100, c, r, 8, 10).is_some(), applies);
        prop_assert_eq!(bounds::theorem5_makespan_bound(10.0, c, r, 10, 4).is_some(), applies);
        prop_assert_eq!(bounds::theorem5_response_bound(10.0, c, r, 10, 4).is_some(), applies);
    }

    /// Trimming can only lower (or keep) the measured availability, and
    /// more trimming never raises it.
    #[test]
    fn trimming_is_monotone(avail in prop::collection::vec(0u32..200, 1..40),
                            l in 1u64..50) {
        let mut prev = f64::INFINITY;
        for trim in 0..avail.len() as u64 + 2 {
            match abg_sim::trimmed_availability(&avail, l, trim * l) {
                Some(v) => {
                    prop_assert!(v <= prev + 1e-9, "trim {trim}: {v} > {prev}");
                    prev = v;
                }
                None => break, // everything trimmed; stays vacuous after
            }
        }
    }
}
