//! Property tests over whole simulated runs: conservation laws of the
//! single-job engine, determinism, and multi-job accounting.

use abg_alloc::{DynamicEquiPartition, Scripted};
use abg_control::{AControl, AGreedy, ConstantRequest, RequestCalculator};
use abg_dag::{Phase, PhasedJob};
use abg_sched::{JobExecutor, PipelinedExecutor};
use abg_sim::{run_single_job, MultiJobSim, SingleJobConfig};
use proptest::prelude::*;

fn phases() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec((1u64..=12, 1u64..=8), 1..6)
        .prop_map(|v| v.into_iter().map(|(w, l)| Phase::new(w, l)).collect())
}

/// One of the three request calculators, chosen by the case generator.
fn calculator(which: u8) -> Box<dyn RequestCalculator + Send> {
    match which % 3 {
        0 => Box::new(AControl::new(0.2)),
        1 => Box::new(AGreedy::paper_default()),
        _ => Box::new(ConstantRequest::new(4.0)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conservation: the traced quantum statistics add up to the job's
    /// intrinsic work and span; waste equals held cycles minus work;
    /// running time is bounded below by both `T∞` and `T1/P`.
    #[test]
    fn single_job_conservation(ph in phases(), which in 0u8..3, p in 1u32..32, l in 1u64..20) {
        let job = PhasedJob::new(ph);
        let (work, span) = (job.work(), job.span());
        let mut ex = PipelinedExecutor::new(job);
        let mut calc = calculator(which);
        let mut alloc = Scripted::ample(p);
        let run = run_single_job(&mut ex, &mut calc, &mut alloc,
                                 SingleJobConfig::new(l).with_trace());

        prop_assert_eq!(run.work, work);
        prop_assert_eq!(run.span, span);
        let traced_work: u64 = run.trace.iter().map(|r| r.stats.work).sum();
        let traced_span: f64 = run.trace.iter().map(|r| r.stats.span).sum();
        prop_assert_eq!(traced_work, work);
        prop_assert!((traced_span - span as f64).abs() < 1e-6);

        let held: u64 = run.trace.iter()
            .map(|r| r.allotment as u64 * r.stats.quantum_len)
            .sum();
        prop_assert_eq!(run.waste, held - work);

        prop_assert!(run.running_time >= span);
        prop_assert!(run.running_time >= work.div_ceil(p as u64));
        // Every quantum except the last is full.
        for r in &run.trace[..run.trace.len() - 1] {
            prop_assert!(r.stats.is_full(), "non-final quantum not full: {r:?}");
        }
    }

    /// Determinism: identical inputs give identical runs.
    #[test]
    fn single_job_deterministic(ph in phases(), which in 0u8..3) {
        let job = PhasedJob::new(ph);
        let run = |job: PhasedJob| {
            let mut ex = PipelinedExecutor::new(job);
            let mut calc = calculator(which);
            let mut alloc = Scripted::ample(16);
            run_single_job(&mut ex, &mut calc, &mut alloc,
                           SingleJobConfig::new(10).with_trace())
        };
        prop_assert_eq!(run(job.clone()), run(job));
    }

    /// ABG requests stay within `[1, peak parallelism]` on any fork-join
    /// job whose phases hold for at least a quantum — the controller is
    /// a convex combination of past requests and measured parallelisms.
    #[test]
    fn abg_requests_bounded_by_peak(ph in phases(), l in 1u64..20) {
        let job = PhasedJob::new(ph);
        let peak = job.phases().iter().map(|p| p.width).max().unwrap() as f64;
        let mut ex = PipelinedExecutor::new(job);
        let mut calc = AControl::new(0.2);
        let mut alloc = Scripted::ample(64);
        let run = run_single_job(&mut ex, &mut calc, &mut alloc,
                                 SingleJobConfig::new(l).with_trace());
        for r in &run.trace {
            prop_assert!(r.request >= 1.0 - 1e-9, "request {} < 1", r.request);
            prop_assert!(r.request <= peak + 1e-9,
                "request {} exceeds peak parallelism {}", r.request, peak);
        }
    }

    /// Multi-job accounting: every job completes after its release, the
    /// makespan is the max completion, and the machine is never
    /// oversubscribed (total waste + total work ≤ quanta·P·L).
    #[test]
    fn multi_job_accounting(jobs in prop::collection::vec((phases(), 0u64..100), 1..6),
                            p in 2u32..32, l in 2u64..20) {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(p), l)
            .with_max_quanta(200_000);
        let mut total_work = 0u64;
        for (ph, release) in &jobs {
            let job = PhasedJob::new(ph.clone());
            total_work += job.work();
            sim.add_job(Box::new(PipelinedExecutor::new(job)),
                        Box::new(AControl::new(0.2)), *release);
        }
        let out = sim.run();
        prop_assert_eq!(out.total_work(), total_work);
        let mut max_completion = 0;
        for j in &out.jobs {
            prop_assert!(j.completion > j.release);
            max_completion = max_completion.max(j.completion);
        }
        prop_assert_eq!(out.makespan, max_completion);
        prop_assert!(out.total_waste + total_work <= out.quanta * p as u64 * l,
            "machine oversubscribed: waste {} + work {} > capacity {}",
            out.total_waste, total_work, out.quanta * p as u64 * l);
    }

    /// The executor's remaining-work view is consistent step by step.
    #[test]
    fn completed_work_monotone(ph in phases(), a in 1u32..16, l in 1u64..10) {
        let job = PhasedJob::new(ph);
        let total = job.work();
        let mut ex = PipelinedExecutor::new(job);
        let mut prev = 0;
        while !ex.is_complete() {
            ex.run_quantum(a, l);
            let done = ex.completed_work();
            prop_assert!(done >= prev);
            prop_assert!(done <= total);
            prev = done;
        }
        prop_assert_eq!(prev, total);
    }
}
