//! Probe-layer acceptance: observation must never perturb simulation.
//!
//! The unified [`QuantumCore`] threads a monomorphized [`Probe`] through
//! its stepping loop. These tests pin the two properties that make the
//! layer trustworthy:
//!
//! * **bit-identity** — a recording [`TraceProbe`] (with availability
//!   probing, which re-runs the allocation policy) produces exactly the
//!   same completions, spans, waste and reallocation counts as
//!   [`NullProbe`], across every queue discipline;
//! * **new capability** — the open-system driver, which had no
//!   instrumentation before the probe layer, now supports trim analysis
//!   (Section 6.1) through a retaining probe; a golden pins its output.

use abg::queue::{run_open_system_probed, OpenConfig, SaturationConfig};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, RequestCalculator};
use abg_dag::{generate, ExplicitDag, PhasedJob};
use abg_sched::{
    BGreedyExecutor, DepthFirstExecutor, GreedyExecutor, JobExecutor, PipelinedExecutor,
};
use abg_sim::{
    mean_availability, trimmed_availability, CompletedJob, NullProbe, Probe, QuantumCore,
    TraceProbe,
};
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `jobs` copies of one executor through a monomorphized core with
/// staggered releases and returns the drained jobs in admission order.
fn run_core<E, P, F>(make: F, jobs: usize, probe: P) -> (Vec<CompletedJob>, P)
where
    E: JobExecutor,
    P: Probe,
    F: Fn() -> E,
{
    let mut core = QuantumCore::new(DynamicEquiPartition::new(24), 10, probe);
    for i in 0..jobs {
        // Mid-quantum releases exercise the release-grid rounding too.
        core.admit(make(), AControl::new(0.2), i as u64 * 15);
    }
    let mut done = Vec::new();
    while core.jobs_in_system() > 0 {
        if !core.any_live() {
            let next = core.next_release().expect("jobs pending");
            core.skip_idle_until(next);
            continue;
        }
        core.step_quantum(&mut done);
    }
    done.sort_by_key(|j| j.id);
    (done, core.into_probe())
}

/// Everything a completed job reports except its trace, bit-exact.
fn summary(jobs: &[CompletedJob]) -> Vec<[u64; 8]> {
    jobs.iter()
        .map(|j| {
            [
                j.id,
                j.release,
                j.completion,
                j.work,
                j.span,
                j.waste,
                j.quanta,
                j.reallocations,
            ]
        })
        .collect()
}

macro_rules! assert_probe_transparent {
    ($make:expr, $jobs:expr) => {{
        let (base, _) = run_core($make, $jobs, NullProbe);
        let (rec, _) = run_core($make, $jobs, TraceProbe::new().with_availability());
        prop_assert_eq!(summary(&base), summary(&rec));
        for j in &rec {
            prop_assert_eq!(j.trace.len() as u64, j.quanta, "one record per quantum");
            for r in &j.trace {
                prop_assert!(r.availability.is_some(), "availability was requested");
            }
        }
        for j in &base {
            prop_assert!(j.trace.is_empty(), "NullProbe must not build traces");
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A recording probe (trace + availability) yields bit-identical
    /// results to `NullProbe` for every queue discipline on random
    /// layered dags.
    #[test]
    fn recording_probe_never_perturbs_results(seed in 0u64..500, jobs in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag: ExplicitDag = generate::random_layered(&mut rng, 6, 1..=6, 0.25);
        assert_probe_transparent!(|| BGreedyExecutor::new(&dag), jobs);
        assert_probe_transparent!(|| GreedyExecutor::new(&dag), jobs);
        assert_probe_transparent!(|| DepthFirstExecutor::new(&dag), jobs);
    }
}

fn trim_config() -> OpenConfig {
    OpenConfig {
        processors: 16,
        quantum_len: 20,
        arrivals: ArrivalProcess::Poisson {
            // Constant 4-wide, 50-level jobs below: T1 = 200 steps.
            mean_gap: mean_gap_for_utilization(0.3, 16, 200.0),
        },
        warmup_jobs: 20,
        measured_jobs: 80,
        batches: 8,
        max_quanta: 1_000_000,
        saturation: SaturationConfig::default(),
        seed: 0x7121,
    }
}

/// `open_system_trim_analysis_smoke` golden: the 2-quantum-trimmed
/// availability over every traced quantum of the smoke run, by bit
/// pattern. Recorded from this test's own output; if an *intentional*
/// change to the driver, the arrival stream or the allocator moves it,
/// re-record and say so in the commit message.
const TRIMMED_GOLDEN: u64 = 0x4024_5b56_30e2_697d; // 10.178391959798995
/// Companion golden: total number of traced quanta in the same run.
const RECORDS_GOLDEN: usize = 400;

/// Trim analysis over the open-system driver — impossible before the
/// probe layer, one retaining probe now.
#[test]
fn open_system_trim_analysis_smoke() {
    let cfg = trim_config();
    let (outcome, probe) = run_open_system_probed(
        &cfg,
        DynamicEquiPartition::new(cfg.processors),
        |_rng, _recycled| -> Box<dyn JobExecutor + Send> {
            Box::new(PipelinedExecutor::new(PhasedJob::constant(4, 50)))
        },
        || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(0.2)) },
        // Retaining: the driver consumes and drops its completed jobs,
        // so traces must survive inside the probe.
        TraceProbe::new().retaining().with_availability(),
    );
    assert!(outcome.steady().is_some(), "rho = 0.3 must be stable");

    let traces = probe.into_completed_traces();
    assert!(traces.len() >= (cfg.warmup_jobs + cfg.measured_jobs) as usize);
    let availabilities: Vec<u32> = traces
        .iter()
        .flat_map(|(_, trace)| trace.iter())
        .map(|r| r.availability.expect("availability was requested"))
        .collect();
    assert!(!availabilities.is_empty());

    let mean = mean_availability(&availabilities).unwrap();
    let trimmed =
        trimmed_availability(&availabilities, cfg.quantum_len, 2 * cfg.quantum_len).unwrap();
    assert!(
        trimmed <= mean,
        "trimming only removes the most generous quanta"
    );
    assert_eq!(
        (availabilities.len(), trimmed.to_bits()),
        (RECORDS_GOLDEN, TRIMMED_GOLDEN),
        "open-system trim analysis drifted: {} records, trimmed availability {}",
        availabilities.len(),
        trimmed,
    );
}
