//! Open-system subsystem acceptance: pinned fingerprint of the smoke
//! sweep, finite statistics under light load, and saturation handling
//! of overload.
//!
//! The golden below was recorded from `abg-cli open --smoke --json`
//! (the JSON carries the same fingerprint). If an *intentional* change
//! to the driver, the arrival stream or the job generator moves it,
//! re-record with that command and say so in the commit message.

use abg::experiments::{open_fingerprint, open_system_sweep, OpenSystemConfig};
use abg::queue::{
    run_open_sharded_with_threads, run_open_system, OpenConfig, OpenOutcome, SaturationConfig,
    ShardRouting, ShardedOpenConfig,
};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, AGreedy, RequestCalculator};
use abg_dag::PhasedJob;
use abg_sched::{JobExecutor, PipelinedExecutor};
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};

/// `open_system_sweep(OpenSystemConfig::smoke())`.
const OPEN_SMOKE: u64 = 0x32ed9525adb1b404;

#[test]
fn smoke_open_sweep_matches_golden() {
    // The sweep now routes every point through the sharded engine with
    // the presets' `shards = 1`, which delegates verbatim to the
    // unsharded event-driven driver — this golden staying pinned IS the
    // bit-identity check for that delegation.
    let rows = open_system_sweep(&OpenSystemConfig::smoke());
    assert_eq!(open_fingerprint(&rows), OPEN_SMOKE);
}

#[test]
fn smoke_open_sweep_is_thread_count_invariant() {
    // Safe to mutate concurrently with sibling tests for the same
    // reason as in sweep_equivalence.rs: results never depend on it.
    for threads in ["1", "2", "8"] {
        std::env::set_var("ABG_THREADS", threads);
        let rows = open_system_sweep(&OpenSystemConfig::smoke());
        assert_eq!(
            open_fingerprint(&rows),
            OPEN_SMOKE,
            "open sweep drifted at ABG_THREADS={threads}"
        );
    }
    std::env::remove_var("ABG_THREADS");
}

fn driver_config(rho: f64) -> OpenConfig {
    OpenConfig {
        processors: 16,
        quantum_len: 20,
        arrivals: ArrivalProcess::Poisson {
            // Constant 4-wide, 50-level jobs below: T1 = 200 steps.
            mean_gap: mean_gap_for_utilization(rho, 16, 200.0),
        },
        warmup_jobs: 30,
        measured_jobs: 120,
        batches: 8,
        max_quanta: 1_000_000,
        saturation: SaturationConfig::default(),
        seed: 0xD01,
    }
}

fn run_with(cfg: &OpenConfig, abg_controller: bool) -> OpenOutcome {
    run_open_system(
        cfg,
        DynamicEquiPartition::new(cfg.processors),
        |_rng, recycled| -> Box<dyn JobExecutor + Send> {
            // Homogeneous constant jobs: recycle drained executors; the
            // reset path must leave every statistic untouched (the smoke
            // fingerprint above pins the heterogeneous fresh-build path).
            if let Some(mut ex) = recycled {
                if ex.try_reset() {
                    return ex;
                }
            }
            Box::new(PipelinedExecutor::new(PhasedJob::constant(4, 50)))
        },
        move || -> Box<dyn RequestCalculator + Send> {
            if abg_controller {
                Box::new(AControl::new(0.2))
            } else {
                Box::new(AGreedy::new(2.0, 0.8))
            }
        },
    )
}

fn run_sharded(cfg: &OpenConfig, shards: u32, threads: usize) -> OpenOutcome {
    run_open_sharded_with_threads(
        &ShardedOpenConfig {
            open: cfg.clone(),
            shards,
            routing: ShardRouting::RoundRobin,
        },
        DynamicEquiPartition::new,
        |_rng, recycled: Option<Box<dyn JobExecutor + Send>>| {
            if let Some(mut ex) = recycled {
                if ex.try_reset() {
                    return ex;
                }
            }
            Box::new(PipelinedExecutor::new(PhasedJob::constant(4, 50)))
        },
        || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(0.2)) },
        threads,
    )
}

#[test]
fn sharded_outcome_is_identical_for_every_thread_count() {
    // The acceptance property of the sharded engine: at a fixed shard
    // count the merged outcome is a pure function of the configuration
    // — the worker pool's size and schedule must never show through.
    let cfg = driver_config(0.5);
    for shards in [2u32, 4, 8] {
        let baseline = run_sharded(&cfg, shards, 1);
        assert!(baseline.is_steady(), "rho = 0.5 with {shards} shards");
        for threads in 2..=8 {
            assert_eq!(
                run_sharded(&cfg, shards, threads),
                baseline,
                "shards = {shards} drifted at {threads} threads"
            );
        }
    }
}

#[test]
fn single_shard_engine_matches_the_event_driver_bit_for_bit() {
    let cfg = driver_config(0.5);
    for threads in [1usize, 4] {
        assert_eq!(run_sharded(&cfg, 1, threads), run_with(&cfg, true));
    }
}

#[test]
fn low_rho_mean_response_is_finite_for_both_schedulers() {
    let cfg = driver_config(0.25);
    for abg_controller in [true, false] {
        let out = run_with(&cfg, abg_controller);
        let stats = out
            .steady()
            .unwrap_or_else(|| panic!("rho = 0.25 unstable (abg = {abg_controller})"));
        assert!(
            stats.response.mean.is_finite() && stats.response.mean > 0.0,
            "non-finite mean response (abg = {abg_controller}): {stats:?}"
        );
        assert!(stats.response.half_width.is_finite());
        assert!(stats.slowdown.p50.is_finite() && stats.slowdown.p50 >= 1.0);
    }
}

#[test]
fn overload_is_flagged_unstable_rather_than_hanging() {
    // rho ≥ 1: the in-system population grows without bound. The run
    // must return with an unstable verdict (trend test or cap), not
    // spin until the quanta budget. At exactly rho = 1 the divergence
    // is slow (critical load grows like √t), so that point gets a
    // measurement target no finite stable system of this size would
    // need — the detector must still cut the run short.
    for rho in [1.0, 1.5, 3.0] {
        let mut cfg = driver_config(rho);
        cfg.measured_jobs = 100_000;
        match run_with(&cfg, true) {
            OpenOutcome::Unstable(report) => {
                assert!(
                    report.quanta < cfg.max_quanta,
                    "rho = {rho} only stopped at the horizon budget"
                );
                assert!(report.jobs_in_system > 0);
            }
            OpenOutcome::Steady(s) => panic!("rho = {rho} reported steady: {s:?}"),
        }
    }
}
