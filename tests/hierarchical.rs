//! Hierarchical two-level scheduling acceptance: the static top level
//! is bit-identical to the sharded engine (and, at one group, to the
//! unsharded driver pinned by `tests/open_system.rs`), outcomes are
//! thread-count invariant, and the desire feedback beats the fixed
//! partition under skewed arrivals.
//!
//! The golden below was recorded from
//! `abg-cli open --smoke --groups 4 --json` (the JSON carries the same
//! fingerprint). If an *intentional* change to the driver, the arrival
//! stream or the job generator moves it, re-record with that command
//! and say so in the commit message.

use abg::experiments::{
    hierarchical_skew_sweep, open_fingerprint, open_system_sweep, HierarchicalConfig,
    OpenSystemConfig,
};
use abg::queue::{
    run_open_hierarchical_with_threads, run_open_sharded_with_threads, HierOpenConfig, OpenConfig,
    OpenOutcome, SaturationConfig, ShardRouting, ShardedOpenConfig,
};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, GroupPolicy, RequestCalculator, StaticEqui};
use abg_dag::PhasedJob;
use abg_sched::{JobExecutor, PipelinedExecutor};
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};

/// `open_system_sweep(OpenSystemConfig::smoke())` — the unsharded
/// driver's golden from `tests/open_system.rs`, which a one-group
/// hierarchical sweep must reproduce bit-for-bit.
const OPEN_SMOKE: u64 = 0x32ed9525adb1b404;

/// `open_system_sweep` of the smoke config at `groups = 4` with the
/// static top level — bit-identical to `shards = 4` by construction
/// (the test below checks that equality too; this constant pins both
/// paths against silent drift).
const OPEN_SMOKE_HIER_STATIC_G4: u64 = 0x53e9b7f79ac798f2;

fn smoke_with_groups(groups: u32, policy: GroupPolicy) -> OpenSystemConfig {
    let mut cfg = OpenSystemConfig::smoke();
    cfg.groups = groups;
    cfg.group_alloc = policy;
    cfg
}

#[test]
fn one_group_hier_sweep_matches_the_unsharded_golden() {
    // groups = 1 delegates verbatim to the unsharded event-driven
    // driver, whatever the policy — the sum invariant forbids any
    // capacity change, so even the feedback policies are inert.
    for policy in [GroupPolicy::Static, GroupPolicy::Desire] {
        let rows = open_system_sweep(&smoke_with_groups(1, policy));
        assert_eq!(open_fingerprint(&rows), OPEN_SMOKE, "{policy:?}");
    }
}

#[test]
fn static_four_group_sweep_matches_golden_and_the_sharded_engine() {
    let rows = open_system_sweep(&smoke_with_groups(4, GroupPolicy::Static));
    assert_eq!(open_fingerprint(&rows), OPEN_SMOKE_HIER_STATIC_G4);
    let mut sharded = OpenSystemConfig::smoke();
    sharded.shards = 4;
    assert_eq!(
        open_fingerprint(&open_system_sweep(&sharded)),
        OPEN_SMOKE_HIER_STATIC_G4,
        "shards = 4 and static groups = 4 must share one fingerprint"
    );
}

fn open_config(rho: f64) -> OpenConfig {
    OpenConfig {
        processors: 16,
        quantum_len: 20,
        arrivals: ArrivalProcess::Poisson {
            // Constant 4-wide, 50-level jobs below: T1 = 200 steps.
            mean_gap: mean_gap_for_utilization(rho, 16, 200.0),
        },
        warmup_jobs: 30,
        measured_jobs: 120,
        batches: 8,
        max_quanta: 1_000_000,
        saturation: SaturationConfig::default(),
        seed: 0xD01,
    }
}

fn make_executor(
    _rng: &mut rand::rngs::StdRng,
    recycled: Option<Box<dyn JobExecutor + Send>>,
) -> Box<dyn JobExecutor + Send> {
    if let Some(mut ex) = recycled {
        if ex.try_reset() {
            return ex;
        }
    }
    Box::new(PipelinedExecutor::new(PhasedJob::constant(4, 50)))
}

fn run_hier(
    cfg: &OpenConfig,
    groups: u32,
    routing: ShardRouting,
    realloc_epoch: u64,
    policy: GroupPolicy,
    threads: usize,
) -> OpenOutcome {
    run_open_hierarchical_with_threads(
        &HierOpenConfig {
            open: cfg.clone(),
            groups,
            routing,
            realloc_epoch,
            group_floor: 1,
        },
        DynamicEquiPartition::new,
        make_executor,
        || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(0.2)) },
        policy.build(),
        threads,
    )
}

fn run_sharded(cfg: &OpenConfig, shards: u32, threads: usize) -> OpenOutcome {
    run_open_sharded_with_threads(
        &ShardedOpenConfig {
            open: cfg.clone(),
            shards,
            routing: ShardRouting::RoundRobin,
        },
        DynamicEquiPartition::new,
        make_executor,
        || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(0.2)) },
        threads,
    )
}

#[test]
fn static_top_level_is_bit_identical_to_the_sharded_engine() {
    // The acceptance anchor at the driver level: a top level that
    // never resizes anyone must be invisible — every group's loop is
    // sliced at epoch boundaries but replays the identical schedule,
    // so the merged outcome equals the fixed-partition sharded engine
    // for every shard count, thread count and epoch length.
    let cfg = open_config(0.5);
    for shards in [1u32, 2, 4, 8] {
        let baseline = run_sharded(&cfg, shards, 1);
        assert!(baseline.is_steady(), "rho = 0.5 with {shards} shards");
        for threads in 1..=8 {
            for epoch in [1u64, 32, 500] {
                assert_eq!(
                    run_hier(
                        &cfg,
                        shards,
                        ShardRouting::RoundRobin,
                        epoch,
                        GroupPolicy::Static,
                        threads,
                    ),
                    baseline,
                    "groups = {shards} drifted at {threads} threads, epoch {epoch}"
                );
            }
        }
    }
}

#[test]
fn static_equi_struct_and_policy_agree() {
    // `GroupPolicy::Static.build()` and the unit struct drive the
    // driver identically (the policy enum is the CLI/config surface,
    // the struct the library one).
    let cfg = open_config(0.5);
    let via_policy = run_hier(
        &cfg,
        4,
        ShardRouting::RoundRobin,
        32,
        GroupPolicy::Static,
        2,
    );
    let via_struct = run_open_hierarchical_with_threads(
        &HierOpenConfig {
            open: cfg.clone(),
            groups: 4,
            routing: ShardRouting::RoundRobin,
            realloc_epoch: 32,
            group_floor: 1,
        },
        DynamicEquiPartition::new,
        make_executor,
        || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(0.2)) },
        StaticEqui,
        2,
    );
    assert_eq!(via_policy, via_struct);
}

#[test]
fn feedback_outcome_is_identical_for_every_thread_count() {
    let cfg = open_config(0.35);
    for policy in [GroupPolicy::Desire, GroupPolicy::Conservative] {
        let baseline = run_hier(&cfg, 4, ShardRouting::Skewed { hot: 4 }, 16, policy, 1);
        assert!(baseline.is_steady(), "{policy:?} at rho = 0.35");
        for threads in 2..=8 {
            assert_eq!(
                run_hier(
                    &cfg,
                    4,
                    ShardRouting::Skewed { hot: 4 },
                    16,
                    policy,
                    threads,
                ),
                baseline,
                "{policy:?} drifted at {threads} threads"
            );
        }
    }
}

#[test]
fn skew_sweep_shows_desire_beating_the_static_partition() {
    // The headline acceptance: under 4:1 skewed arrivals the
    // desire-proportional top level delivers a lower mean response
    // time than the fixed equi-partition (the numbers recorded in
    // EXPERIMENTS.md come from this same smoke sweep).
    let rows = hierarchical_skew_sweep(&HierarchicalConfig::smoke());
    let skewed = rows.last().expect("smoke sweep has a skewed point");
    assert_eq!(skewed.hot, 4);
    let by_policy = |p: GroupPolicy| {
        skewed
            .cells
            .iter()
            .find(|c| c.policy == p)
            .unwrap_or_else(|| panic!("{p:?} missing"))
    };
    let stat = by_policy(GroupPolicy::Static);
    let desire = by_policy(GroupPolicy::Desire);
    assert!(stat.stable && desire.stable);
    assert!(
        desire.mean_response < stat.mean_response,
        "desire {} !< static {}",
        desire.mean_response,
        stat.mean_response
    );
    assert!(desire.hot_processors > stat.hot_processors);
}

#[test]
fn hier_sweep_is_abg_threads_invariant() {
    // Safe to mutate concurrently with sibling tests for the same
    // reason as in sweep_equivalence.rs: results never depend on it.
    let cfg = smoke_with_groups(4, GroupPolicy::Desire);
    std::env::set_var("ABG_THREADS", "1");
    let baseline = open_fingerprint(&open_system_sweep(&cfg));
    for threads in ["2", "8"] {
        std::env::set_var("ABG_THREADS", threads);
        assert_eq!(
            open_fingerprint(&open_system_sweep(&cfg)),
            baseline,
            "hier sweep drifted at ABG_THREADS={threads}"
        );
    }
    std::env::remove_var("ABG_THREADS");
}
