//! A multiprogrammed cluster: a batch of data-parallel jobs
//! space-sharing 64 processors through dynamic equi-partitioning, run
//! once with every job under ABG and once under A-Greedy.
//!
//! ```text
//! cargo run --release --example multiprogrammed_cluster
//! ```
//!
//! This is the scenario of the paper's Figure 6 at human scale: a dozen
//! jobs, one machine, and the question "who finishes sooner and wastes
//! less?".

use abg::bounds::{makespan_lower_bound, response_lower_bound_batched, JobSize};
use abg::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_set(set: &JobSet, abg: bool) -> MultiJobOutcome {
    let mut sim =
        MultiJobSim::new(DynamicEquiPartition::new(set.processors), set.quantum_len).with_traces();
    for (job, &release) in set.jobs.iter().zip(&set.releases) {
        // Any `Controller` can drive any job; the engine holds them as a
        // heterogeneous boxed set.
        let calc: Box<dyn Controller + Send> = if abg {
            Box::new(AControl::new(0.2))
        } else {
            Box::new(AGreedy::new(2.0, 0.8))
        };
        sim.add_job(Box::new(PipelinedExecutor::new(job.clone())), calc, release);
    }
    sim.run()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = JobSetSpec {
        processors: 64,
        quantum_len: 100,
        load: 1.5, // moderately loaded machine
        max_factor: 32,
        pairs: 3,
        max_jobs: 64,
        release: ReleaseSchedule::Batched,
    };
    let set = spec.generate(&mut rng);
    println!(
        "generated {} jobs, achieved load {:.2} on {} processors\n",
        set.len(),
        set.load(),
        set.processors
    );

    let abg = run_set(&set, true);
    let agreedy = run_set(&set, false);

    println!("job   T1       T∞     avg-par   ABG done   A-Greedy done");
    for (i, job) in set.jobs.iter().enumerate() {
        println!(
            "{:>3} {:>8} {:>7} {:>8.1} {:>10} {:>13}",
            i,
            job.work(),
            job.span(),
            job.average_parallelism(),
            abg.jobs[i].completion,
            agreedy.jobs[i].completion,
        );
    }

    let sizes: Vec<JobSize> = set
        .jobs
        .iter()
        .zip(&set.releases)
        .map(|(j, &r)| JobSize {
            work: j.work(),
            span: j.span(),
            release: r,
        })
        .collect();
    let m_star = makespan_lower_bound(&sizes, set.processors);
    let r_star = response_lower_bound_batched(&sizes, set.processors);

    println!("\n                 ABG        A-Greedy   lower-bound");
    println!(
        "makespan   {:>9} {:>13}     {:>9.0}",
        abg.makespan, agreedy.makespan, m_star
    );
    println!(
        "mean resp. {:>9.0} {:>13.0}     {:>9.0}",
        abg.mean_response_time(),
        agreedy.mean_response_time(),
        r_star
    );
    println!(
        "waste      {:>9} {:>13}",
        abg.total_waste, agreedy.total_waste
    );
    println!(
        "\nA-Greedy / ABG: makespan ×{:.3}, mean response ×{:.3}, waste ×{:.2}",
        agreedy.makespan as f64 / abg.makespan as f64,
        agreedy.mean_response_time() / abg.mean_response_time(),
        agreedy.total_waste as f64 / abg.total_waste.max(1) as f64
    );

    println!("\nABG allotment Gantt (watch DEQ water-fill as jobs finish):");
    print!(
        "{}",
        abg::gantt::render_gantt(&abg, set.quantum_len, set.processors, 72)
    );
}
