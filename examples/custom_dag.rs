//! Scheduling an irregular dag built by hand, and why B-Greedy's
//! breadth-first rule matters for the parallelism measurement.
//!
//! ```text
//! cargo run --release --example custom_dag
//! ```
//!
//! Recreates the paper's Figure-2 scenario (fractional quantum
//! statistics) and then compares the quantum parallelism measured by
//! B-Greedy against a depth-first greedy scheduler on the same dag.
//! Executors are driven directly here — no driver, no `Controller` —
//! which is exactly the layer the unified quantum core builds on.

use abg::prelude::*;

fn main() {
    // ── Figure 2: one source forking into five 3-task chains. ──────
    let dag = abg_dag::generate::figure2_job();
    println!(
        "Figure-2 job ({} tasks, {} levels):",
        dag.work(),
        dag.span()
    );
    println!("{}", dag.to_dot("figure2"));

    let mut ex = BGreedyExecutor::new(&dag);
    let warmup = ex.run_quantum(1, 2);
    println!(
        "warm-up (a=1, 2 steps):   T1 = {:>2}, T∞ = {:.1}",
        warmup.work, warmup.span
    );
    let q = ex.run_quantum(4, 3);
    println!(
        "measured (a=4, 3 steps):  T1(q) = {}, T∞(q) = {}, A(q) = {}",
        q.work,
        q.span,
        q.average_parallelism().expect("work was done")
    );
    println!("paper's Figure 2:         T1(q) = 12, T∞(q) = 2.4, A(q) = 5\n");

    // ── A hand-built irregular dag. ─────────────────────────────────
    // diamond of diamonds: a -> {b1..b4} -> c -> {d1..d6} -> e
    let mut b = DagBuilder::new();
    let a = b.add_task();
    let bs: Vec<TaskId> = (0..4).map(|_| b.add_task()).collect();
    let c = b.add_task();
    let ds: Vec<TaskId> = (0..6).map(|_| b.add_task()).collect();
    let e = b.add_task();
    for &x in &bs {
        b.add_edge(a, x).unwrap();
        b.add_edge(x, c).unwrap();
    }
    for &x in &ds {
        b.add_edge(c, x).unwrap();
        b.add_edge(x, e).unwrap();
    }
    let dag = b.build().expect("acyclic by construction");
    println!(
        "hand-built dag: {} tasks, span {}, level sizes {:?}",
        dag.work(),
        dag.span(),
        dag.level_sizes()
    );

    // Same dag, same allotment, two priority rules.
    let mut breadth = BGreedyExecutor::new(&dag);
    let mut depth = DepthFirstExecutor::new(&dag);
    let sb = breadth.run_quantum(3, 100);
    let sd = depth.run_quantum(3, 100);
    println!(
        "breadth-first: finished in {} steps, measured A = {:.2}",
        sb.steps_worked,
        sb.average_parallelism().unwrap()
    );
    println!(
        "depth-first:   finished in {} steps, measured A = {:.2}",
        sd.steps_worked,
        sd.average_parallelism().unwrap()
    );
    println!(
        "\nboth complete the dag (greedy bound T ≤ T1/a + T∞ holds for each),\n\
         but B-Greedy's level-by-level progress is what makes the fractional\n\
         T∞(q) measurement — and hence the feedback signal A(q) — faithful."
    );
}
