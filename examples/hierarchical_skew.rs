//! Hierarchical two-level scheduling under skewed arrivals: what the
//! desire-feedback top level buys over the fixed equi-partition.
//!
//! ```text
//! cargo run --release --example hierarchical_skew
//! ```
//!
//! A 32-processor machine is split into 4 processor groups. Arrivals
//! are routed with skew `h`: group 0 receives `h` of every `h + 3`
//! arrivals, the rest one each — so at `h = 1` the split is uniform
//! and at `h = 8` group 0 carries ~73% of the load while holding 25%
//! of the machine under the static partition. Each row runs the same
//! arrival sequence and job population under a top-level policy and
//! reports the steady-state mean response time, the hot group's final
//! capacity, and the spread of per-group served utilization (completed
//! work over each group's own capacity integral). The static policy is
//! bit-identical to the fixed-partition sharded engine; the feedback
//! policies reallocate every 50 quanta and should flatten the
//! utilization spread as the skew grows.

use abg::experiments::{hierarchical_skew_sweep, HierarchicalConfig};
use abg::queue::SaturationConfig;
use abg_control::GroupPolicy;

fn main() {
    let cfg = HierarchicalConfig {
        processors: 32,
        groups: 4,
        quantum_len: 20,
        realloc_epoch: 50,
        group_floor: 1,
        rho: 0.4,
        hots: vec![1, 2, 4, 8],
        policies: vec![
            GroupPolicy::Static,
            GroupPolicy::Desire,
            GroupPolicy::Conservative,
        ],
        width: 2,
        levels: 100,
        warmup_jobs: 200,
        measured_jobs: 800,
        batches: 8,
        max_quanta: 50_000_000,
        saturation: SaturationConfig::default(),
        rate: 0.2,
        seed: 0x5E3A,
    };
    let rows = hierarchical_skew_sweep(&cfg);

    println!(
        "hierarchical two-level scheduling, P = {}, G = {}, aggregate rho = {}, \
         realloc every {} quanta",
        cfg.processors, cfg.groups, cfg.rho, cfg.realloc_epoch
    );
    println!(
        "{:>4}  {:>9}  {:>12}  {:>12}  {:>8}  {:>7}  {:>24}",
        "skew", "local rho", "policy", "mean resp", "sd p50", "hot P", "group utilization"
    );
    for row in &rows {
        for cell in &row.cells {
            let utils: Vec<String> = cell
                .group_utilization
                .iter()
                .map(|u| format!("{u:.2}"))
                .collect();
            let (resp, sd) = if cell.stable {
                (
                    format!("{:.1}", cell.mean_response),
                    format!("{:.2}", cell.slowdown_p50),
                )
            } else {
                ("unstable".into(), "-".into())
            };
            println!(
                "{:>4}  {:>9.3}  {:>12}  {:>12}  {:>8}  {:>7}  {:>24}",
                row.hot,
                row.hot_local_rho,
                cell.policy.name(),
                resp,
                sd,
                cell.hot_processors,
                utils.join(" "),
            );
        }
        println!();
    }
    println!(
        "local rho = the hot group's offered load under the FIXED partition; the static \
         policy faces it directly,\nwhile the feedback policies shift capacity toward the \
         hot group (see 'hot P') and level the utilizations."
    );
}
