//! Transient behaviour: ABG vs A-Greedy request trajectories on a
//! constant-parallelism job (the paper's Figures 1 and 4), rendered as
//! an ASCII chart. Both controllers run through the same unified core;
//! only the `Controller` impl differs.
//!
//! ```text
//! cargo run --release --example transient_requests
//! ```

use abg::experiments::{transient_comparison, TransientConfig};

fn bar(value: f64, scale: f64, width: usize, ch: char) -> String {
    let n = ((value / scale) * width as f64).round() as usize;
    std::iter::repeat_n(ch, n.min(width)).collect()
}

fn main() {
    let cfg = TransientConfig {
        parallelism: 10,
        quantum_len: 100,
        quanta: 12,
        rate: 0.2,
        responsiveness: 2.0,
        utilization: 0.8,
        processors: 128,
    };
    let res = transient_comparison(&cfg);
    let max = 20.0; // chart scale: twice the parallelism
    let width = 48;

    println!(
        "constant parallelism A = {}  (quantum L = {}, r = {}, ρ = {})\n",
        cfg.parallelism, cfg.quantum_len, cfg.rate, cfg.responsiveness
    );
    println!("ABG (A-Control): converges geometrically, no overshoot");
    for p in &res.abg {
        println!(
            " q={:>2} d={:>6.2} |{:<width$}|",
            p.quantum,
            p.request,
            bar(p.request, max, width, '#')
        );
    }
    println!("\nA-Greedy: multiplicative increase/decrease never settles");
    for p in &res.agreedy {
        println!(
            " q={:>2} d={:>6.2} |{:<width$}|",
            p.quantum,
            p.request,
            bar(p.request, max, width, '*')
        );
    }
    println!(
        "\n(the target parallelism sits at column {}; every '*' row above or\n \
         below it is a quantum of misallocated processors)",
        width / 2
    );
}
