//! Quickstart: schedule one malleable fork-join job with ABG.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a data-parallel job (serial → 32-wide → serial → 8-wide →
//! serial), runs it alone on a 64-processor machine under the ABG
//! two-level scheduler (B-Greedy task scheduler + the A-Control
//! `Controller`), and prints what happened quantum by quantum.

use abg::prelude::*;

fn main() {
    // A job is a dag of unit tasks; fork-join jobs are described by
    // their phase list. `PhasedJob` phases pipeline internally and join
    // at phase boundaries.
    let job = PhasedJob::new(vec![
        Phase::new(1, 40),  // serial ramp-in
        Phase::new(32, 90), // wide data-parallel phase
        Phase::new(1, 30),  // serial reduction
        Phase::new(8, 60),  // narrower parallel phase
        Phase::new(1, 20),  // serial tail
    ]);
    println!(
        "job: T1 = {} tasks, T∞ = {} levels, average parallelism = {:.1}",
        job.work(),
        job.span(),
        job.average_parallelism()
    );

    // The two-level scheduler: the task scheduler executes and measures,
    // the `Controller` turns measurements into processor requests, the
    // OS allocator grants them (here: everything available, up to
    // P = 64). Every driver — this one, the multi-job engine and the
    // open-system driver — is the same unified quantum core under a
    // different configuration.
    let mut executor = PipelinedExecutor::new(job);
    let mut controller = AControl::new(0.2); // convergence rate r = 0.2
    let mut allocator = Scripted::ample(64);

    let run = run_single_job(
        &mut executor,
        &mut controller,
        &mut allocator,
        SingleJobConfig::new(25).with_trace(), // quantum length L = 25
    );

    println!("\n q    d(q)  a(q)   T1(q)  T∞(q)    A(q)");
    for r in &run.trace {
        println!(
            "{:>2} {:>7.2} {:>5} {:>7} {:>6.1} {:>7.1}",
            r.index,
            r.request,
            r.allotment,
            r.stats.work,
            r.stats.span,
            r.stats.average_parallelism().unwrap_or(f64::NAN),
        );
    }

    println!(
        "\ncompleted in {} steps (critical path {}, so T/T∞ = {:.2})",
        run.running_time,
        run.span,
        run.time_over_span()
    );
    println!(
        "wasted {} processor-cycles on {} of work (W/T1 = {:.3})",
        run.waste,
        run.work,
        run.waste_over_work()
    );
    println!("speedup over serial execution: {:.1}×", run.speedup());
}
