//! Bring your own controller: one `Controller` impl drives every driver.
//!
//! ```text
//! cargo run --release --example custom_controller
//! ```
//!
//! The unified quantum core is generic over the [`Controller`] trait, so
//! a user-defined request policy plugs into the closed single-job driver
//! and the open-system (sustained-arrival) driver without touching
//! either. The controller here snaps its request to the nearest power of
//! two and only moves when the measured parallelism drifts — the kind of
//! policy a cluster with power-of-two partition sizes would actually
//! want, and one the paper never had to name.

use abg::prelude::*;
use abg::queue::{run_open_system, OpenConfig, SaturationConfig};
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};

/// Requests the power of two nearest the measured average parallelism,
/// holding its position until the measurement drifts by more than the
/// hysteresis band (so one noisy quantum cannot flap the partition).
#[derive(Debug, Clone)]
struct PowerOfTwo {
    request: f64,
    hysteresis: f64,
}

impl PowerOfTwo {
    fn new(hysteresis: f64) -> Self {
        Self {
            request: 1.0,
            hysteresis,
        }
    }
}

impl Controller for PowerOfTwo {
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        if let Some(a) = stats.average_parallelism() {
            let drift = (a - self.request).abs() / self.request.max(1.0);
            if drift > self.hysteresis {
                // Nearest power of two in log-space, never below 1.
                self.request = 2f64.powf(a.max(1.0).log2().round());
            }
        }
        self.request
    }

    fn current_request(&self) -> f64 {
        self.request
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

fn main() {
    let job = PhasedJob::new(vec![
        Phase::new(1, 40),
        Phase::new(24, 120),
        Phase::new(1, 40),
        Phase::new(6, 90),
        Phase::new(1, 30),
    ]);

    // ── Closed driver: the job alone on the machine. ────────────────
    let run = run_single_job(
        &mut PipelinedExecutor::new(job.clone()),
        &mut PowerOfTwo::new(0.25),
        &mut Scripted::ample(64),
        SingleJobConfig::new(25).with_trace(),
    );
    println!("closed driver, one job under the custom controller:");
    println!(" q    d(q)  a(q)    A(q)");
    for r in &run.trace {
        println!(
            "{:>2} {:>7.2} {:>5} {:>7.1}",
            r.index,
            r.request,
            r.allotment,
            r.stats.average_parallelism().unwrap_or(f64::NAN),
        );
    }
    println!(
        "done in {} steps (T/T∞ = {:.2}), waste/work = {:.3}",
        run.running_time,
        run.time_over_span(),
        run.waste_over_work()
    );
    for r in &run.trace {
        let d = r.request;
        assert!(
            (d.log2().fract()).abs() < 1e-12,
            "every request is a power of two, got {d}"
        );
    }

    // ── Open driver: the same controller under Poisson arrivals. ────
    let cfg = OpenConfig {
        processors: 32,
        quantum_len: 25,
        arrivals: ArrivalProcess::Poisson {
            // T1 = 6 * 60 = 360 steps per job, offered at rho = 0.4.
            mean_gap: mean_gap_for_utilization(0.4, 32, 360.0),
        },
        warmup_jobs: 40,
        measured_jobs: 160,
        batches: 8,
        max_quanta: 1_000_000,
        saturation: SaturationConfig::default(),
        seed: 0xCAFE,
    };
    let outcome = run_open_system(
        &cfg,
        DynamicEquiPartition::new(cfg.processors),
        |_rng, _recycled| -> Box<dyn JobExecutor + Send> {
            Box::new(PipelinedExecutor::new(PhasedJob::constant(6, 60)))
        },
        // The same user type, boxed for the heterogeneous engine.
        || -> Box<dyn Controller + Send> { Box::new(PowerOfTwo::new(0.25)) },
    );
    let stats = outcome.steady().expect("rho = 0.4 is stable");
    println!("\nopen driver, sustained arrivals under the same controller:");
    println!(
        "  {} arrivals measured over {} steps",
        stats.arrivals, stats.horizon
    );
    println!(
        "  mean response {:.0} ± {:.0} steps, median slowdown {:.2}",
        stats.response.mean, stats.response.half_width, stats.slowdown.p50
    );
}
