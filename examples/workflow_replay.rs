//! Workflow round-trip: generate a weighted Montage-like dag, save it
//! to the on-disk dag-file format, reload it bit-for-bit, and drive the
//! reloaded dag both as a closed single job and as the arrival
//! population of the hierarchical open-system driver.
//!
//! ```text
//! cargo run --release --example workflow_replay
//! ```
//!
//! The dag-file format is line-oriented text (`tasks`, `weight`,
//! `edge`); Rust's shortest-round-trip float formatting makes the
//! half-integer stage weights reload with identical bit patterns, so
//! the replayed runs are exact replicas, not approximations.

use std::sync::Arc;

use abg::experiments::{open_system_sweep, OpenSystemConfig, OpenWorkload};
use abg_sched::{BGreedyExecutor, JobExecutor as _};
use abg_workload::{load_dag, save_dag, WorkflowKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate one Montage-like workflow instance with seeded
    //    half-integer stage weights.
    let mut rng = StdRng::seed_from_u64(0x4D4F_4E54);
    let dag = WorkflowKind::Montage.generate(8, &mut rng);
    println!(
        "generated {}: {} tasks, work T1 = {}, levels = {}, weighted span T∞ = {}",
        WorkflowKind::Montage,
        dag.num_tasks(),
        dag.work(),
        dag.span(),
        dag.weighted_span(),
    );

    // 2. Save to disk and reload; the round-trip must be exact.
    let path = std::env::temp_dir().join("abg_workflow_replay_montage.dag");
    let path = path.to_str().expect("temp path is valid UTF-8");
    save_dag(path, &dag).expect("can write the dag file");
    let reloaded = load_dag(path).expect("can reload the dag file");
    assert_eq!(dag, reloaded, "round-trip must be bit-exact");
    println!("saved to {path} and reloaded bit-for-bit");
    println!();

    // 3. Closed replay: run the reloaded dag to completion at fixed
    //    allotments and compare against the weighted Brent bound
    //    T1/a + T∞.
    println!("closed replay (quantum length 20):");
    println!("{:>3}  {:>6}  {:>12}  {:>6}", "a", "T", "bound", "quanta");
    for a in [1u32, 2, 4, 8] {
        let mut ex = BGreedyExecutor::new(&reloaded);
        let mut quanta = 0u64;
        while !ex.is_complete() {
            ex.run_quantum(a, 20);
            quanta += 1;
        }
        let bound = reloaded.work() as f64 / a as f64 + reloaded.weighted_span() as f64;
        println!(
            "{:>3}  {:>6}  {:>12.1}  {:>6}",
            a,
            ex.elapsed_steps(),
            bound,
            quanta
        );
    }
    println!();

    // 4. Open replay: every arrival executes the reloaded dag, routed
    //    through the hierarchical two-level driver with desire-feedback
    //    reallocation across 4 processor groups.
    let mut cfg = OpenSystemConfig::smoke();
    cfg.rhos = vec![0.3, 0.6];
    cfg.groups = 4;
    cfg.group_alloc = "desire".parse().expect("a valid policy name");
    cfg.workload = OpenWorkload::Trace(Arc::new(reloaded));
    cfg.validate().expect("a consistent configuration");
    let rows = open_system_sweep(&cfg);
    println!(
        "open replay on P = {} over {} groups ({} reallocation every {} quanta):",
        cfg.processors,
        cfg.groups,
        cfg.group_alloc.name(),
        cfg.realloc_epoch
    );
    println!(
        "{:>5}  {:>10}  {:>12}  {:>8}  {:>8}",
        "rho", "E[T1]", "abg resp", "sd p50", "sd p95"
    );
    for r in &rows {
        let (resp, p50, p95) = if r.abg.stable {
            (
                format!(
                    "{:.1}±{:.1}",
                    r.abg.mean_response, r.abg.response_half_width
                ),
                format!("{:.2}", r.abg.slowdown_p50),
                format!("{:.2}", r.abg.slowdown_p95),
            )
        } else {
            ("unstable".into(), "-".into(), "-".into())
        };
        println!(
            "{:>5.2}  {:>10.1}  {:>12}  {:>8}  {:>8}",
            r.rho, r.expected_work, resp, p50, p95
        );
    }
    println!();
    println!(
        "every arrival replays the same reloaded dag, so E[T1] is exact (no Monte-Carlo \
         sampling) and\nthe whole run is reproducible from the dag file and the seed alone."
    );

    let _ = std::fs::remove_file(path);
}
