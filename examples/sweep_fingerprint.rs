//! Prints bit-exact fingerprints of the paper-scale sweeps.
//!
//! ```text
//! cargo run --release --example sweep_fingerprint [--paper]
//! ```
//!
//! The values only depend on the config (including the seed), never on
//! the machine or thread count. Record them before a kernel or layout
//! refactor and compare after: equal fingerprints mean the refactor is
//! behavior-identical down to the last ulp on every sweep output field
//! (the unified-quantum-core rewrite of all four drivers was gated on
//! exactly this check).
//! `tests/sweep_equivalence.rs` pins the scaled-config values; the
//! `--paper` run covers the full Figure-5/Figure-6 scale (slower).

use abg::experiments::{
    load_fingerprint, multiprogrammed_sweep, single_job_sweep, sweep_fingerprint,
    MultiprogrammedConfig, SingleJobSweepConfig,
};
use std::time::Instant;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("  [{label}: {:.2}s]", start.elapsed().as_secs_f64());
    out
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");

    let scaled = timed("fig5 scaled", || {
        single_job_sweep(&SingleJobSweepConfig::scaled())
    });
    println!(
        "single_job_sweep(scaled)        = {:#018x}",
        sweep_fingerprint(&scaled)
    );

    let multi_scaled = timed("fig6 scaled", || {
        multiprogrammed_sweep(&MultiprogrammedConfig::scaled())
    });
    println!(
        "multiprogrammed_sweep(scaled)   = {:#018x}",
        load_fingerprint(&multi_scaled)
    );

    if paper {
        let fig5 = timed("fig5 paper", || {
            single_job_sweep(&SingleJobSweepConfig::paper())
        });
        println!(
            "single_job_sweep(paper)         = {:#018x}",
            sweep_fingerprint(&fig5)
        );

        let fig6 = timed("fig6 paper", || {
            multiprogrammed_sweep(&MultiprogrammedConfig::paper())
        });
        println!(
            "multiprogrammed_sweep(paper)    = {:#018x}",
            load_fingerprint(&fig6)
        );
    }
}
