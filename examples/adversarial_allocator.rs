//! Trim analysis in action: an adversarial OS allocator that floods the
//! job with processors exactly when its parallelism is low, and the
//! Theorem-3 guarantee that survives it.
//!
//! ```text
//! cargo run --release --example adversarial_allocator
//! ```

use abg::bounds;
use abg::prelude::*;
use abg_sim::{mean_availability, trimmed_availability};

fn main() {
    // A job alternating serial and 16-wide phases.
    let job = PhasedJob::new(vec![
        Phase::new(1, 50),
        Phase::new(16, 200),
        Phase::new(1, 50),
        Phase::new(16, 200),
        Phase::new(1, 50),
    ]);
    let quantum_len = 50u64;
    let rate = 0.2;

    // The adversary: austere most of the time, generous in bursts —
    // engineered to tempt naive speedup accounting.
    let script: Vec<u32> = (0..32)
        .map(|i| if i % 8 == 0 { 64 } else { 2 + (i % 3) })
        .collect();
    let mut allocator = Scripted::cycling(64, script);

    let mut executor = PipelinedExecutor::new(job.clone());
    let mut controller = AControl::new(rate);
    let run = run_single_job(
        &mut executor,
        &mut controller,
        &mut allocator,
        SingleJobConfig::new(quantum_len).with_trace(),
    );

    let availabilities: Vec<u32> = run
        .trace
        .iter()
        .map(|r| r.availability.expect("traced"))
        .collect();
    let naive_mean = mean_availability(&availabilities).expect("trace is non-empty");

    // Measure the transition factor this schedule actually exhibited.
    let c_l = {
        let mut prev = 1.0f64;
        let mut c = 1.0f64;
        for r in run.trace.iter().filter(|r| r.stats.is_full()) {
            if let Some(a) = r.stats.average_parallelism() {
                c = c.max(if a > prev { a / prev } else { prev / a });
                prev = a;
            }
        }
        c
    };

    let trim_steps = bounds::theorem3_trim_steps(run.span, c_l, rate, quantum_len);
    let p_trimmed =
        trimmed_availability(&availabilities, quantum_len, trim_steps.ceil() as u64).unwrap_or(1.0);
    let bound = bounds::theorem3_time_bound(run.work, run.span, c_l, rate, p_trimmed, quantum_len);

    println!(
        "job: T1 = {}, T∞ = {}, measured C_L = {:.1}",
        run.work, run.span, c_l
    );
    println!("adversarial availability: mean {naive_mean:.1} processors/quantum");
    println!(
        "  …but the {:.0}-step-trimmed availability is only {:.2} processors",
        trim_steps, p_trimmed
    );
    println!();
    println!("running time:        {:>8} steps", run.running_time);
    println!(
        "Theorem-3 bound:     {:>8.0} steps  (2·T1/P̃ + (C_L+1-2r)/(1-r)·T∞ + L)",
        bound
    );
    println!(
        "naive 'bound' using the untrimmed mean would be {:.0} steps — the\n\
         adversary's generosity bursts make it unobtainable; trim analysis\n\
         charges the adversary for them instead.",
        2.0 * run.work as f64 / naive_mean + run.span as f64
    );
    assert!((run.running_time as f64) <= bound, "Theorem 3 must hold");
}
