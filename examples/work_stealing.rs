//! Work stealing with and without parallelism feedback: A-Steal vs ABP
//! vs centralized ABG on the same job.
//!
//! ```text
//! cargo run --release --example work_stealing
//! ```
//!
//! ABP holds the whole machine and burns the serial phases in failed
//! steal attempts; A-Steal's feedback releases processors it cannot
//! use; centralized ABG additionally avoids steal overhead entirely.
//! All three request policies are ordinary [`Controller`]s
//! (`abg_steal` implements the trait for its schedulers), so they drop
//! into `run_single_job` unchanged.

use abg::prelude::*;
use abg_steal::{abp_request, ASteal, StealExecutor};

fn main() {
    let processors = 32u32;
    let quantum = 50u64;
    let job = PhasedJob::new(vec![
        Phase::new(1, 120),
        Phase::new(16, 300),
        Phase::new(1, 120),
        Phase::new(16, 300),
        Phase::new(1, 120),
    ]);
    println!(
        "job: T1 = {}, T∞ = {}, average parallelism {:.1}; machine P = {}\n",
        job.work(),
        job.span(),
        job.average_parallelism(),
        processors
    );

    // Centralized ABG (B-Greedy + A-Control) on the pipelined fast path.
    let abg = run_single_job(
        &mut PipelinedExecutor::new(job.clone()),
        &mut AControl::new(0.2),
        &mut Scripted::ample(processors),
        SingleJobConfig::new(quantum),
    );

    // The stealing schedulers need the explicit dag.
    let dag = job.to_explicit();

    let mut asteal_exec = StealExecutor::new(&dag, 0xA5);
    let asteal = run_single_job(
        &mut asteal_exec,
        &mut ASteal::paper_default(),
        &mut Scripted::ample(processors),
        SingleJobConfig::new(quantum),
    );
    let asteal_steals = asteal_exec.steal_cycles();

    let mut abp_exec = StealExecutor::new(&dag, 0xA5);
    let abp = run_single_job(
        &mut abp_exec,
        &mut abp_request(processors),
        &mut Scripted::ample(processors),
        SingleJobConfig::new(quantum),
    );
    let abp_steals = abp_exec.steal_cycles();

    println!("scheduler                      T/T∞    W/T1   steal-cycles");
    println!(
        "abg (centralized)            {:>6.2} {:>7.3}   {:>12}",
        abg.time_over_span(),
        abg.waste_over_work(),
        "-"
    );
    println!(
        "a-steal (feedback stealing)  {:>6.2} {:>7.3}   {:>12}",
        asteal.time_over_span(),
        asteal.waste_over_work(),
        asteal_steals
    );
    println!(
        "abp (no feedback)            {:>6.2} {:>7.3}   {:>12}",
        abp.time_over_span(),
        abp.waste_over_work(),
        abp_steals
    );
    println!(
        "\nABP wastes {:.1}× more cycles than A-Steal — the value of\n\
         parallelism feedback, independent of the execution substrate.",
        abp.waste_over_work() / asteal.waste_over_work().max(1e-9)
    );
}
