//! Aggregate throughput of the sharded open-system engine: the same
//! offered load simulated as one machine versus as independent
//! processor-group shards.
//!
//! ```text
//! cargo run --release --example sharded_scaling
//! ```
//!
//! Each row splits a 128-processor machine at ρ = 0.85 into `G` shards
//! and reports how much simulated time the engine commits per
//! wall-clock second (aggregate committed quanta × quantum length,
//! summed over shards). Two effects stack:
//!
//! * every decimated shard runs its own full horizon, so the aggregate
//!   simulated time grows with `G` at the same total arrival count; and
//! * each shard's event loop prices a population `G`× smaller, so those
//!   horizons are also cheaper to commit.
//!
//! The pool here is pinned to one worker so the table isolates the
//! algorithmic win; on a multi-core machine `run_open_sharded` spreads
//! the shards over `ABG_THREADS` workers on top of it.

use abg::queue::{
    run_open_sharded_with_threads, OpenConfig, SaturationConfig, ShardRouting, ShardedOpenConfig,
};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, RequestCalculator};
use abg_dag::PhasedJob;
use abg_sched::{JobExecutor, PipelinedExecutor};
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let processors = 128u32;
    let rho = 0.85;
    // Width-2 jobs keep even a 1/8 slice of the machine at 8 effective
    // servers — every shard stays in the satisfied regime where frozen
    // windows form. T1 = 2 × 40_000 = 80_000 steps per job.
    let job = Arc::new(PhasedJob::constant(2, 40_000));
    let t1 = 2.0 * 40_000.0;
    let open = OpenConfig {
        processors,
        quantum_len: 100,
        arrivals: ArrivalProcess::Poisson {
            mean_gap: mean_gap_for_utilization(rho, processors, t1),
        },
        warmup_jobs: 200,
        measured_jobs: 2_000,
        batches: 8,
        max_quanta: u64::MAX,
        saturation: SaturationConfig {
            // ~ρ·P/width ≈ 54 jobs are in flight at this load, and the
            // ramp from an empty system to that plateau would read as
            // "queue growth" under the default margin (tuned for the
            // small populations of the test sweeps). Widening the
            // additive margin keeps the trend test armed for genuine
            // divergence only.
            margin: 80.0,
            ..SaturationConfig::default()
        },
        seed: 0xB16C_2008,
    };

    println!("sharded open-system engine, P = {processors}, rho = {rho}");
    println!(
        "{:>6}  {:>14}  {:>9}  {:>13}  {:>8}",
        "shards", "agg steps", "wall ms", "steps/s", "vs G=1"
    );
    let mut base = None;
    for shards in [1u32, 2, 4, 8] {
        let cfg = ShardedOpenConfig {
            open: open.clone(),
            shards,
            routing: ShardRouting::RoundRobin,
        };
        let start = Instant::now();
        let out = run_open_sharded_with_threads(
            &cfg,
            DynamicEquiPartition::new,
            |_rng, recycled: Option<Box<dyn JobExecutor + Send>>| {
                if let Some(mut ex) = recycled {
                    if ex.try_reset() {
                        return ex;
                    }
                }
                Box::new(PipelinedExecutor::new(Arc::clone(&job)))
            },
            || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(0.2)) },
            1,
        );
        let wall = start.elapsed().as_secs_f64();
        let stats = out.steady().expect("rho = 0.85 is stable");
        let steps = stats.quanta * open.quantum_len;
        let rate = steps as f64 / wall;
        let speedup = rate / *base.get_or_insert(rate);
        println!(
            "{:>6}  {:>14}  {:>9.1}  {:>13.3e}  {:>7.2}x",
            shards,
            steps,
            wall * 1e3,
            rate,
            speedup
        );
    }
}
