//! Workspace-root shim crate for the ABG reproduction.
//!
//! This package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the [`abg`] facade crate and the per-subsystem crates
//! (`abg-dag`, `abg-sched`, `abg-control`, `abg-alloc`, `abg-sim`,
//! `abg-workload`).

pub use abg::prelude;
