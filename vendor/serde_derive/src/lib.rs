//! Offline stub of `serde_derive`.
//!
//! The ABG workspace derives `Serialize`/`Deserialize` on its data types
//! for downstream consumers, but no code path in the repo performs wire
//! (de)serialization. The build container has no network access to
//! crates.io, so this stub satisfies the derive syntax with an empty
//! expansion; swap the `[patch.crates-io]` entry out to restore the real
//! implementation.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
