//! Offline stub of `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as an API
//! affordance for downstream consumers; nothing in-repo serializes. This
//! stub re-exports no-op derive macros so the workspace builds in the
//! network-less container. The `[patch.crates-io]` entry in the root
//! `Cargo.toml` routes `serde = "1.0"` here; delete the patch to use the
//! real crate when a registry is reachable.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
