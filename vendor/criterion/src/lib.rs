//! Offline stub of `criterion`.
//!
//! The build container has no registry access, so this crate provides a
//! minimal wall-clock benchmark runner behind the criterion API the
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros). Each benchmark is
//! auto-calibrated to a short measurement window and reports the mean
//! time per iteration on stdout — useful for relative comparisons, with
//! none of criterion's statistics, warm-up discipline, or HTML reports.
//! The `[patch.crates-io]` entry in the root `Cargo.toml` routes
//! `criterion` here; delete the patch for real statistical runs when a
//! registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark. Kept short: the stub exists
/// so `cargo bench` runs and prints comparable numbers, not to publish
/// statistically rigorous results.
const TARGET: Duration = Duration::from_millis(300);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str` or a `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct Bencher {
    /// Mean wall time per iteration from the last `iter` call.
    mean: Duration,
    iters_run: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then time a single iteration to pick a batch
        // size that fills the target window.
        std::hint::black_box(routine());
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch = (TARGET.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        self.mean = total / batch as u32;
        self.iters_run = batch;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, throughput: Option<Throughput>, mut f: F) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut bencher = Bencher {
        mean: Duration::ZERO,
        iters_run: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.mean;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  thrpt: {per_sec:.3e} elem/s")
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  thrpt: {per_sec:.3e} B/s")
        }
        _ => String::new(),
    };
    println!(
        "bench: {full:<48} time: {per_iter:>12.3?} ({} iters){rate}",
        bencher.iters_run
    );
}

pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into_id(), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into_id(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(None, &id.into_id(), None, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export so `criterion::black_box` also resolves.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
