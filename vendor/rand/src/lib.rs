//! Offline stub of `rand` 0.10.
//!
//! The build container has no registry access, so this crate provides the
//! subset of the `rand` API the workspace uses — `Rng`, `RngExt`,
//! `SeedableRng`, and `rngs::StdRng` — backed by a deterministic
//! SplitMix64 generator. The statistical quality is more than adequate
//! for DAG generation and scheduler simulation; the stream differs from
//! upstream `StdRng` (ChaCha), so seeded outputs are reproducible within
//! this repo but not against binaries built with the real crate. The
//! `[patch.crates-io]` entry in the root `Cargo.toml` routes `rand`
//! here; delete the patch to use the real crate when a registry is
//! reachable.

/// Core generator trait: everything derives from a 64-bit output.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Wrapping handles the degenerate full-domain range.
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * unit_f64(rng)
    }
}

/// Values sampled by the plain `rng.random()` call.
pub trait StandardSample: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every `Rng`.
pub trait RngExt: Rng {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for the upstream
    /// `StdRng`. Same-seed runs produce identical streams on every
    /// platform, which is all the workspace's reproducibility guarantees
    /// require.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One mixing round so that small consecutive seeds (0, 1, 2…)
            // still start from well-separated states.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            Self {
                state: seed ^ rng.next_u64().rotate_left(17),
            }
        }
    }
}
