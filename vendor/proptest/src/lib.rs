//! Offline stub of `proptest`.
//!
//! The build container has no registry access, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//! the `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `Just`, `prop_oneof!` (weighted and
//! unweighted), `prop::collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` iterations with
//! inputs drawn from a generator seeded deterministically from the test
//! path and case index, so failures reproduce run-to-run. There is no
//! shrinking — a failing case panics with the sampled values visible in
//! the assertion message. The `[patch.crates-io]` entry in the root
//! `Cargo.toml` routes `proptest` here; delete the patch to use the real
//! crate when a registry is reachable.

pub mod test_runner {
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Run configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Generator handed to strategies. Seeded from the test path and case
    /// index so every run samples the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt as _;

    /// A value generator. The stub samples uniformly instead of tracking
    /// shrink trees, so `sample` is the whole interface.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! requires a positive total weight"
            );
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.random_range(0..total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A => 0);
    impl_tuple_strategy!(A => 0, B => 1);
    impl_tuple_strategy!(A => 0, B => 1, C => 2);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt as _;

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                { $body }
            }
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

/// Skip the current case when its inputs do not satisfy a precondition.
/// Expands to a `continue` targeting the per-case loop that `proptest!`
/// generates, so it is only meaningful inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
